// Package server exposes Quarry's components over HTTP-based RESTful
// APIs, mirroring the paper's service-oriented architecture (§2.6):
// the Requirements Elicitor's exploration endpoints, the requirement
// lifecycle (add/change/remove with automatic interpretation,
// integration and validation), access to the unified and partial
// design solutions in their logical XML formats, and the Design
// Deployer. Payloads are xRQ/xMD/xLM XML for designs and JSON for
// everything else.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quarry/internal/core"
	"quarry/internal/olap"
	"quarry/internal/replication"
	"quarry/internal/shard"
	mf "quarry/internal/storage/manifest"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// Options tunes the serving layer.
type Options struct {
	// OLAPConcurrency bounds the number of OLAP queries executing at
	// once; excess requests queue. 0 means 2×GOMAXPROCS.
	OLAPConcurrency int
	// OLAPCacheSize is the capacity of the LRU result cache (entries);
	// 0 means 256, negative disables caching.
	OLAPCacheSize int
	// ReadOnly rejects every design- or warehouse-mutating endpoint
	// (requirement lifecycle, deploy, run) with 403 — the replica
	// posture: a replica's warehouse is written only by its syncer,
	// and its design only by the bootstrap replay.
	ReadOnly bool
	// ReplicaStatus, when set, marks this node a replica in
	// /api/health and reports its replication lag there.
	ReplicaStatus func() replication.Status
	// SLOTarget is the latency budget the admission controller defends:
	// when an arriving OLAP request's projected queue wait (plus, under
	// the expensive-first policy, its own per-class cost estimate)
	// exceeds it, the request is shed with 429 + Retry-After. 0
	// disables shedding entirely.
	SLOTarget time.Duration
	// ShedPolicy picks how the controller refuses work once SLOTarget
	// is blown: PolicyExpensiveFirst (default — costly classes are
	// refused at a lower backlog than cheap ones), PolicyFair
	// (class-blind), or PolicyOff.
	ShedPolicy string
	// DefaultDeadline bounds every OLAP query's end-to-end time when
	// the client sends no X-Quarry-Deadline header; expiry answers 504
	// instead of holding the connection. 0 means no server-side
	// deadline.
	DefaultDeadline time.Duration
}

// Server serves a Platform.
type Server struct {
	p             *core.Platform
	mux           *http.ServeMux
	pool          chan struct{}
	readOnly      bool
	replicaStatus func() replication.Status
	// cache holds OLAP results keyed by query + warehouse version; it
	// is purged whenever /api/run reloads the warehouse.
	cache *olap.ResultCache
	// adm is the SLO-driven admission controller shared by /api/olap
	// and /api/olap/partial; always non-nil (shedding disabled when
	// SLOTarget is 0, but the per-class service-time tracking runs
	// regardless so /api/olap/stats can always report class costs).
	adm *admission
	// defaultDeadline is Options.DefaultDeadline.
	defaultDeadline time.Duration
	// Monotonic POST /api/olap traffic counters for /api/olap/stats.
	// Every request increments olapQueries and then exactly one of the
	// other three, so the accounting identity
	//
	//	queries = answered + shed + query_errors
	//
	// holds exactly whenever no request is in flight — load harnesses
	// (quarrybench) scrape before and after a drained run and
	// reconcile their client-side deltas against it.
	// olapDeadline counts the subset of olapErrors that were 504s
	// (deadline expiry, queued or mid-query).
	olapQueries  atomic.Int64
	olapAnswered atomic.Int64
	olapShed     atomic.Int64
	olapErrors   atomic.Int64
	olapDeadline atomic.Int64
	// refreshes tracks the background materialized-aggregate refreshes
	// kicked off by /api/run, so shutdown/tests can drain them.
	refreshes sync.WaitGroup
	// refreshMu/refreshActive/refreshAgain single-flight those
	// refreshes: rapid consecutive runs coalesce into one in-flight
	// refresh plus at most one follow-up (latest wins), instead of N
	// concurrent full materialization passes racing to install.
	refreshMu     sync.Mutex
	refreshActive bool
	refreshAgain  bool
}

// New wires the routes with default options.
func New(p *core.Platform) *Server { return NewWithOptions(p, Options{}) }

// NewWithOptions wires the routes.
func NewWithOptions(p *core.Platform, opts Options) *Server {
	if opts.OLAPConcurrency <= 0 {
		opts.OLAPConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.OLAPCacheSize == 0 {
		opts.OLAPCacheSize = 256
	}
	s := &Server{
		p:               p,
		mux:             http.NewServeMux(),
		pool:            make(chan struct{}, opts.OLAPConcurrency),
		readOnly:        opts.ReadOnly,
		replicaStatus:   opts.ReplicaStatus,
		cache:           olap.NewResultCache(opts.OLAPCacheSize),
		adm:             newAdmission(opts.SLOTarget, opts.ShedPolicy, opts.OLAPConcurrency),
		defaultDeadline: opts.DefaultDeadline,
	}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/ontology/graph", s.handleGraph)
	s.mux.HandleFunc("GET /api/ontology/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/elicitor/foci", s.handleFoci)
	s.mux.HandleFunc("GET /api/elicitor/suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /api/requirements", s.handleListRequirements)
	s.mux.HandleFunc("POST /api/requirements", s.mutating(s.handleAddRequirement))
	s.mux.HandleFunc("GET /api/requirements/{id}", s.handleGetRequirement)
	s.mux.HandleFunc("PUT /api/requirements/{id}", s.mutating(s.handleChangeRequirement))
	s.mux.HandleFunc("DELETE /api/requirements/{id}", s.mutating(s.handleRemoveRequirement))
	s.mux.HandleFunc("GET /api/design/md", s.handleUnifiedMD)
	s.mux.HandleFunc("GET /api/design/etl", s.handleUnifiedETL)
	s.mux.HandleFunc("GET /api/design/md/partial/{id}", s.handlePartialMD)
	s.mux.HandleFunc("GET /api/design/etl/partial/{id}", s.handlePartialETL)
	s.mux.HandleFunc("GET /api/quality", s.handleQuality)
	s.mux.HandleFunc("POST /api/deploy", s.mutating(s.handleDeploy))
	s.mux.HandleFunc("POST /api/run", s.mutating(s.handleRun))
	s.mux.HandleFunc("GET /api/export/{notation}", s.handleExport)
	s.mux.HandleFunc("POST /api/olap", s.handleOLAP)
	s.mux.HandleFunc("POST /api/olap/partial", s.handleOLAPPartial)
	s.mux.HandleFunc("GET /api/olap/stats", s.handleOLAPStats)
	// Replication feed (the primary side of segment shipping): any
	// disk-backed node serves its committed manifest and immutable
	// segment files, so replicas can also chain off other replicas.
	s.mux.HandleFunc("GET /api/replication/manifest", s.handleReplicationManifest)
	s.mux.HandleFunc("GET /api/replication/segment/{name}", s.handleReplicationSegment)
	return s
}

// mutating gates a design- or warehouse-mutating handler behind the
// read-only flag.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.readOnly {
			writeErr(w, http.StatusForbidden, fmt.Errorf("this node is a read replica; send writes to the primary"))
			return
		}
		h(w, r)
	}
}

// olapRequest is the JSON body of POST /api/olap.
type olapRequest struct {
	Fact     string   `json:"fact"`
	GroupBy  []string `json:"group_by"`
	Measures []struct {
		Out  string `json:"out"`
		Func string `json:"func"`
		Col  string `json:"col"`
	} `json:"measures"`
	Filter string `json:"filter,omitempty"`
	// RollUp maps xMD dimension names to the hierarchy level to
	// aggregate at (e.g. {"Supplier": "Nation"}).
	RollUp map[string]string `json:"roll_up,omitempty"`
	// Dice applies a diamond dice before aggregation.
	Dice *struct {
		Func       string             `json:"func"`
		Col        string             `json:"col,omitempty"`
		Thresholds map[string]float64 `json:"thresholds"`
	} `json:"dice,omitempty"`
	// Oracle answers via the star-flow reference executor instead of
	// the vectorized fast path (slower; for cross-checking).
	Oracle bool `json:"oracle,omitempty"`
}

type olapResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// deadlineHeader carries a client's per-request latency budget: a Go
// duration string ("250ms", "2s") or a bare integer in milliseconds.
// The server's DefaultDeadline applies when the header is absent.
const deadlineHeader = "X-Quarry-Deadline"

// queryBudget resolves one request's effective deadline budget:
// header first, server default second, 0 for none. A malformed
// header is the client's error.
func (s *Server) queryBudget(r *http.Request) (time.Duration, error) {
	h := strings.TrimSpace(r.Header.Get(deadlineHeader))
	if h == "" {
		return s.defaultDeadline, nil
	}
	var d time.Duration
	if ms, err := strconv.ParseInt(h, 10, 64); err == nil {
		d = time.Duration(ms) * time.Millisecond
	} else if d, err = time.ParseDuration(h); err != nil {
		return 0, fmt.Errorf("invalid %s header %q: want a positive Go duration (e.g. \"250ms\") or integer milliseconds", deadlineHeader, h)
	}
	if d <= 0 {
		return 0, fmt.Errorf("invalid %s header %q: budget must be positive", deadlineHeader, h)
	}
	return d, nil
}

// shedResponse is the body of a 429: the request was refused by the
// admission controller, not failed — retrying after RetryAfterMs is
// expected to succeed.
type shedResponse struct {
	Error           string  `json:"error"`
	Shed            bool    `json:"shed"`
	Class           string  `json:"class"`
	ProjectedWaitMs float64 `json:"projected_wait_ms"`
	RetryAfterMs    int64   `json:"retry_after_ms"`
}

// writeShed answers a refused request with 429 + Retry-After.
func writeShed(w http.ResponseWriter, class queryClass, retryAfter, projected time.Duration) {
	w.Header().Set("Retry-After", strconv.FormatInt(int64(retryAfter.Seconds()+0.5), 10))
	writeJSON(w, http.StatusTooManyRequests, shedResponse{
		Error: fmt.Sprintf("overloaded: projected wait %s exceeds the SLO; retry after %s",
			projected.Round(time.Millisecond), retryAfter),
		Shed:            true,
		Class:           classNames[class],
		ProjectedWaitMs: float64(projected) / float64(time.Millisecond),
		RetryAfterMs:    retryAfter.Milliseconds(),
	})
}

// deadlineResponse is the body of a 504: the query's deadline expired
// before it finished. Partial-progress fields tell the caller where
// the budget went (queued vs executing).
type deadlineResponse struct {
	Error            string  `json:"error"`
	DeadlineExceeded bool    `json:"deadline_exceeded"`
	Class            string  `json:"class"`
	BudgetMs         float64 `json:"budget_ms"`
	ElapsedMs        float64 `json:"elapsed_ms"`
	QueueWaitMs      float64 `json:"queue_wait_ms"`
	// Executed is false when the deadline expired while still queued
	// for an executor slot: the query itself never started.
	Executed bool `json:"executed"`
}

// failOLAP answers a query that did not produce a result, after
// its admission ticket has been settled: silence for a vanished
// client, 504 with partial-progress stats when the server-side
// deadline expired, 422 otherwise. Returns true when the failure was
// a deadline expiry (the caller's counters differ).
func failOLAP(w http.ResponseWriter, r *http.Request, ctx context.Context, class queryClass,
	budget time.Duration, arrival, execStart time.Time, executed bool, err error) (deadline bool) {
	if r.Context().Err() != nil {
		// The CLIENT's context died: it disconnected (or gave up on its
		// own deadline). If the failure happened while still queued
		// there is a last-gasp 503 attempt, mirroring the pre-deadline
		// behaviour; mid-query there is no one left to answer.
		if !executed {
			writeErr(w, http.StatusServiceUnavailable, r.Context().Err())
		}
		return false
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		elapsed := time.Since(arrival)
		queueWait := execStart.Sub(arrival)
		if !executed {
			queueWait = elapsed
		}
		writeJSON(w, http.StatusGatewayTimeout, deadlineResponse{
			Error: fmt.Sprintf("deadline exceeded: %s budget spent (%s queued) before the %s query finished",
				budget, queueWait.Round(time.Millisecond), classNames[class]),
			DeadlineExceeded: true,
			Class:            classNames[class],
			BudgetMs:         float64(budget) / float64(time.Millisecond),
			ElapsedMs:        float64(elapsed) / float64(time.Millisecond),
			QueueWaitMs:      float64(queueWait) / float64(time.Millisecond),
			Executed:         executed,
		})
		return true
	}
	writeErr(w, http.StatusUnprocessableEntity, err)
	return false
}

func (s *Server) handleOLAP(w http.ResponseWriter, r *http.Request) {
	s.olapQueries.Add(1)
	arrival := time.Now()
	var body olapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		s.olapErrors.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Cache lookup: canonical request JSON + current warehouse version.
	// A lookup keyed one version behind is merely a miss; storing is
	// the dangerous direction, so Put below keys by the version of the
	// snapshot the query ACTUALLY ran against (res.Version) — reading
	// the version here and reusing it for the Put would, when an ETL
	// run commits between the two, file a newer-snapshot result under
	// the older version's key and serve stale-keyed data forever
	// after. Hits are answered before touching the query pool — and
	// before admission control: a cache hit costs microseconds and is
	// ALWAYS admitted, which is what keeps dashboards alive while the
	// expensive classes shed.
	var canonical []byte
	if db := s.p.DB(); db != nil {
		if c, err := json.Marshal(body); err == nil {
			canonical = c
			if res, ok := s.cache.Get(fmt.Sprintf("v%d:%s", db.Version(), c)); ok {
				s.olapAnswered.Add(1)
				s.adm.observe(classCacheHit, time.Since(arrival).Nanoseconds())
				w.Header().Set("X-Quarry-Cache", "hit")
				w.Header().Set("X-Quarry-Class", olap.ClassCacheHit)
				w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", res.Version))
				writeJSON(w, http.StatusOK, olapBody(res))
				return
			}
		}
	}
	budget, err := s.queryBudget(r)
	if err != nil {
		s.olapErrors.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// The deadline rides the request context end-to-end: queue wait
	// below, then the executors' batch-boundary checks, so an expired
	// query frees its slot at the next batch instead of running to
	// completion for an answer nobody is owed anymore.
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, arrival.Add(budget))
		defer cancel()
	}
	// Admission: project this request's queue wait from the current
	// backlog and its own class cost; shed with 429 + Retry-After when
	// the projection blows the SLO. Refusing here costs microseconds —
	// the whole point is to spend them instead of a timeout.
	class := predictClass(body.Oracle, body.Dice != nil)
	tkt, admitted, retryAfter, projected := s.adm.admit(class)
	if !admitted {
		s.olapShed.Add(1)
		writeShed(w, class, retryAfter, projected)
		return
	}
	// Bounded-concurrency query pool: at most cap(s.pool) queries
	// execute at once, the rest queue here. A client that disconnects
	// while queued abandons its slot request instead of burning a
	// query on an answer nobody will read; one that disconnects after
	// acquiring the slot cancels the query itself at its next batch
	// boundary (the request context flows into the executors).
	select {
	case s.pool <- struct{}{}:
	case <-ctx.Done():
		s.adm.done(tkt, class, -1) // never executed: no service-time observation
		s.olapErrors.Add(1)
		if failOLAP(w, r, ctx, class, budget, arrival, arrival, false, ctx.Err()) {
			s.olapDeadline.Add(1)
		}
		return
	}
	// The slot is held until the response is WRITTEN, not just until the
	// query executes: marshalling a large result is real work, and the
	// pool is what bounds it (releasing early lets an overloaded node
	// marshal dozens of multi-megabyte answers at once and collapse).
	// The admission EWMA must therefore observe the same span the slot
	// is held for — execution plus serialization — or the backlog
	// projection promises a drain rate the pool cannot deliver and
	// admitted requests overshoot the SLO; that is why the success path
	// below settles its ticket after writeJSON, not after the query.
	defer func() { <-s.pool }()
	execStart := time.Now()
	if testingOLAPBeforeQuery != nil {
		testingOLAPBeforeQuery()
	}
	oe, err := s.p.OLAP()
	if err != nil {
		s.adm.done(tkt, class, time.Since(execStart).Nanoseconds())
		s.olapErrors.Add(1)
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := olap.CubeQuery{Fact: body.Fact, GroupBy: body.GroupBy, Filter: body.Filter, RollUp: body.RollUp}
	for _, m := range body.Measures {
		q.Measures = append(q.Measures, olap.MeasureSpec{Out: m.Out, Func: m.Func, Col: m.Col})
	}
	if body.Dice != nil {
		q.Dice = &olap.DiceSpec{Func: body.Dice.Func, Col: body.Dice.Col, Thresholds: body.Dice.Thresholds}
	}
	var res *olap.Result
	if body.Oracle {
		res, err = oe.QueryStarFlowContext(ctx, q)
	} else {
		res, err = oe.QueryContext(ctx, q)
	}
	execNs := time.Since(execStart).Nanoseconds()
	if err != nil {
		// The slot time was burned even though the query failed, so it
		// still feeds the class's service-time estimate.
		s.adm.done(tkt, class, execNs)
		s.olapErrors.Add(1)
		if failOLAP(w, r, ctx, class, budget, arrival, execStart, true, err) {
			s.olapDeadline.Add(1)
		}
		return
	}
	s.olapAnswered.Add(1)
	if canonical != nil {
		// An expired or failed query never reaches this Put: only
		// completed answers are published to the result cache.
		s.cache.Put(fmt.Sprintf("v%d:%s", res.Version, canonical), res)
		w.Header().Set("X-Quarry-Cache", "miss")
	}
	w.Header().Set("X-Quarry-Class", res.Class)
	// The version of the snapshot the answer actually came from, so
	// clients cross-checking two answers (e.g. quarrybench's oracle
	// spot checks) can tell version skew from disagreement.
	w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", res.Version))
	writeJSON(w, http.StatusOK, olapBody(res))
	// Settled AFTER the write so the observed service time spans the
	// whole slot-holding: execution plus marshal/write (see the slot
	// comment above). EWMA attribution uses the class that ACTUALLY
	// answered (a predicted fast-path query may have been served by a
	// materialized aggregate), keeping the estimates honest per class.
	s.adm.done(tkt, classOf(res.Class), time.Since(execStart).Nanoseconds())
}

// handleOLAPPartial answers a cube query as pre-finalisation partial
// aggregates — the shard side of scatter-gather (see internal/shard).
// A non-sharded node answers as the single shard of a 1-way topology,
// which is also the degenerate case the identity tests pin. Requests
// share the OLAP query pool with /api/olap.
//
// With "oracle": true, the shard self-verifies before answering: it
// finalises its own partial as a 1-way merge and compares the bytes
// against its local star-flow reference executor over the same
// partition; a mismatch is a 500, never a wrong partial.
func (s *Server) handleOLAPPartial(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	var body olapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	budget, err := s.queryBudget(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, arrival.Add(budget))
		defer cancel()
	}
	// Partials share the admission controller with /api/olap: an
	// overloaded shard sheds its partials with 429 too, and the gather
	// router treats that as "busy, retry later" rather than a dead
	// shard. (Partial traffic is not counted in the /api/olap stats
	// counters — those cover that endpoint alone — but the per-class
	// admission stats see it.)
	class := predictClass(body.Oracle, body.Dice != nil)
	tkt, admitted, retryAfter, projected := s.adm.admit(class)
	if !admitted {
		writeShed(w, class, retryAfter, projected)
		return
	}
	select {
	case s.pool <- struct{}{}:
	case <-ctx.Done():
		s.adm.done(tkt, class, -1)
		failOLAP(w, r, ctx, class, budget, arrival, arrival, false, ctx.Err())
		return
	}
	defer func() { <-s.pool }()
	execStart := time.Now()
	oe, err := s.p.OLAP()
	if err != nil {
		s.adm.done(tkt, class, time.Since(execStart).Nanoseconds())
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := olap.CubeQuery{Fact: body.Fact, GroupBy: body.GroupBy, Filter: body.Filter, RollUp: body.RollUp}
	for _, m := range body.Measures {
		q.Measures = append(q.Measures, olap.MeasureSpec{Out: m.Out, Func: m.Func, Col: m.Col})
	}
	if body.Dice != nil {
		q.Dice = &olap.DiceSpec{Func: body.Dice.Func, Col: body.Dice.Col, Thresholds: body.Dice.Thresholds}
	}
	partial, err := oe.QueryPartialContext(ctx, q)
	if err != nil {
		s.adm.done(tkt, class, time.Since(execStart).Nanoseconds())
		failOLAP(w, r, ctx, class, budget, arrival, execStart, true, err)
		return
	}
	spec := s.p.Shard()
	if !spec.Enabled() {
		spec = shard.Spec{Index: 0, Count: 1}
	}
	resp := shard.EncodePartial(spec.Index, spec.Count, partial.Version, partial.Columns, partial.GroupCols, partial.Aggs, partial.Groups)
	if body.Oracle {
		if err := s.selfVerifyPartial(ctx, oe, q, partial); err != nil {
			s.adm.done(tkt, class, time.Since(execStart).Nanoseconds())
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", partial.Version))
	writeJSON(w, http.StatusOK, resp)
	// Settled after the write, as in handleOLAP, so the estimate covers
	// everything the slot was held for — including the encode and the
	// oracle self-verify.
	s.adm.done(tkt, class, time.Since(execStart).Nanoseconds())
}

// selfVerifyPartial finalises the shard's own partial as a 1-way merge
// and compares the rendered rows byte-for-byte against the star-flow
// reference executor over the same local partition.
func (s *Server) selfVerifyPartial(ctx context.Context, oe *olap.Engine, q olap.CubeQuery, partial *olap.Partial) error {
	solo := shard.EncodePartial(0, 1, partial.Version, partial.Columns, partial.GroupCols, partial.Aggs, partial.Groups)
	cols, rows, _, err := shard.Merge([]*shard.PartialResponse{solo})
	if err != nil {
		return fmt.Errorf("self-verify: finalising own partial: %w", err)
	}
	want, err := oe.QueryStarFlowContext(ctx, q)
	if err != nil {
		return fmt.Errorf("self-verify: reference executor: %w", err)
	}
	if len(cols) != len(want.Columns) || len(rows) != len(want.Rows) {
		return fmt.Errorf("self-verify: partial finalises to %dx%d, reference is %dx%d", len(rows), len(cols), len(want.Rows), len(want.Columns))
	}
	for i, row := range rows {
		got := olap.RenderRow(row)
		ref := olap.RenderRow(want.Rows[i])
		for j := range got {
			if got[j] != ref[j] {
				return fmt.Errorf("self-verify: row %d column %q: partial %q, reference %q", i, cols[j], got[j], ref[j])
			}
		}
	}
	return nil
}

// testingOLAPBeforeQuery, when set, runs after the cache miss — with
// the query slot already held — and before query execution: the seam
// race-shaped tests use to commit an ETL run, or cancel the client,
// inside that window. Never set outside tests.
var testingOLAPBeforeQuery func()

// olapStatsResponse is the admin view of the serving layer's caches
// and admission controller.
type olapStatsResponse struct {
	// Raw POST /api/olap traffic counters, all monotonic. Every request
	// lands in exactly one of answered / shed / query_errors, so over
	// any window with no requests in flight
	//
	//	queries = answered + shed + query_errors
	//
	// holds exactly (quarrybench's stats-delta reconciliation depends
	// on it). query_errors counts every non-2xx that is not a shed —
	// bad bodies, abandoned queued queries, failed executions, and
	// deadline expiries; deadline_exceeded separately counts the 504
	// subset of those errors.
	Queries          int64 `json:"queries"`
	Answered         int64 `json:"answered"`
	Shed             int64 `json:"shed"`
	QueryErrors      int64 `json:"query_errors"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// Result cache (query + version keyed LRU).
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// Warehouse structural version (bumped once per ETL run commit).
	WarehouseVersion uint64 `json:"warehouse_version"`
	// Admission controller: SLO config, projected wait, and per-class
	// service-time estimates / occupancy / shed counts. Partial
	// (shard) traffic shows up here but not in the counters above.
	Admission admissionStats `json:"admission"`
	// Materialized-aggregate store; null when disabled.
	MatAgg *olap.MatAggStats `json:"matagg,omitempty"`
}

// scheduleMatAggRefresh kicks a background aggregate refresh with
// single-flight coalescing: if one is already running, it is flagged
// to run once more when done (picking up the newest version) instead
// of spawning a redundant concurrent materialization pass whose
// entries the store's install guard would discard anyway.
func (s *Server) scheduleMatAggRefresh() {
	mat := s.p.MatAgg()
	if mat == nil {
		return
	}
	s.refreshMu.Lock()
	if s.refreshActive {
		s.refreshAgain = true
		s.refreshMu.Unlock()
		return
	}
	s.refreshActive = true
	s.refreshMu.Unlock()
	s.refreshes.Add(1)
	go func() {
		defer s.refreshes.Done()
		for {
			if oe, err := s.p.OLAP(); err == nil {
				_, _ = mat.Refresh(oe) // failures are surfaced via /api/olap/stats
			}
			s.refreshMu.Lock()
			if !s.refreshAgain {
				s.refreshActive = false
				s.refreshMu.Unlock()
				return
			}
			s.refreshAgain = false
			s.refreshMu.Unlock()
		}
	}()
}

func (s *Server) handleOLAPStats(w http.ResponseWriter, _ *http.Request) {
	var out olapStatsResponse
	out.Queries = s.olapQueries.Load()
	out.Answered = s.olapAnswered.Load()
	out.Shed = s.olapShed.Load()
	out.QueryErrors = s.olapErrors.Load()
	out.DeadlineExceeded = s.olapDeadline.Load()
	out.Admission = s.adm.stats()
	out.CacheHits, out.CacheMisses = s.cache.Stats()
	out.CacheEntries = s.cache.Len()
	if db := s.p.DB(); db != nil {
		out.WarehouseVersion = db.Version()
	}
	if mat := s.p.MatAgg(); mat != nil {
		st := mat.Stats()
		out.MatAgg = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func olapBody(res *olap.Result) olapResponse {
	out := olapResponse{Columns: res.Columns, Rows: [][]string{}}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, olap.RenderRow(row))
	}
	return out
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	text, err := s.p.ExportFlow(r.PathValue("notation"))
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "no exporter") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, text)
}

// WarehouseChanged tells the serving layer the warehouse moved to a
// new committed version: cached OLAP results are purged (they are
// version-keyed, so this is hygiene, not correctness) and the hot
// aggregates re-materialize in the background. /api/run calls it
// after an ETL commit; a replica's sync loop calls it after adopting
// a new manifest.
func (s *Server) WarehouseChanged() {
	s.cache.Purge()
	// Until the refresh completes, queries fall back to the base-fact
	// path — the per-entry version check makes serving a stale
	// aggregate impossible either way.
	s.scheduleMatAggRefresh()
}

// handleReplicationManifest streams the committed manifest of a
// disk-backed warehouse — the entry point of the replication
// protocol. Reading the file (not the in-memory catalog) is what
// keeps the feed byte-identical to the commit point: whatever rename
// last landed is what replicas adopt.
func (s *Server) handleReplicationManifest(w http.ResponseWriter, _ *http.Request) {
	dir := s.storageDir()
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("replication requires a disk-backed warehouse (-data-dir)"))
		return
	}
	f, err := os.Open(filepath.Join(dir, mf.FileName))
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no committed manifest yet"))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// handleReplicationSegment streams one immutable segment file. A 404
// means the segment was garbage-collected since the manifest the
// replica is working from (a republish or compaction landed); the
// replica's next pass fetches the newer manifest.
func (s *Server) handleReplicationSegment(w http.ResponseWriter, r *http.Request) {
	dir := s.storageDir()
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("replication requires a disk-backed warehouse (-data-dir)"))
		return
	}
	name := r.PathValue("name")
	// The name check doubles as the path-traversal guard: segment
	// names contain no separators or dots beyond their fixed suffix.
	if !mf.IsSegmentName(name) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid segment name %q", name))
		return
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("segment %s no longer exists (superseded by a newer commit)", name))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

func (s *Server) storageDir() string {
	if db := s.p.DB(); db != nil {
		return db.StorageDir()
	}
	return ""
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeXML(w http.ResponseWriter, status int, text string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, text)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// Operational fingerprint of the warehouse: which backend it runs
	// on ("disk" backends name their directory), and the committed
	// version — the same version every OLAP result and materialized
	// aggregate is keyed on, so operators can correlate cache
	// behaviour with reloads.
	resp := map[string]any{"status": "ok"}
	// Overload posture: whether this node sheds, and the lifetime
	// shed/deadline counters — the first numbers to look at when
	// clients report 429s or 504s.
	if s.adm.shedding() {
		resp["slo_target_ms"] = float64(s.adm.slo) / float64(time.Millisecond)
		resp["shed_policy"] = s.adm.policy
	}
	resp["shed"] = s.olapShed.Load()
	resp["deadline_exceeded"] = s.olapDeadline.Load()
	if s.replicaStatus != nil {
		resp["role"] = "replica"
		resp["replica"] = s.replicaStatus()
	} else {
		resp["role"] = "primary"
	}
	// Shard identity + epoch: what the gather router polls to verify
	// the topology it scatters over, and what an operator compares
	// across shards to spot a node loading out of lockstep.
	if spec := s.p.Shard(); spec.Enabled() {
		resp["shard_index"] = spec.Index
		resp["shard_count"] = spec.Count
		if db := s.p.DB(); db != nil {
			resp["epoch"] = db.Version()
		}
	}
	if db := s.p.DB(); db != nil {
		backend := "memory"
		if dir := db.StorageDir(); dir != "" {
			backend = "disk"
			resp["storage_dir"] = dir
		}
		resp["storage"] = backend
		resp["warehouse_version"] = db.Version()
		// Disk footprint: per-table segment counts and bytes, plus the
		// totals — the numbers an operator watches to see compaction
		// keeping segment counts bounded and the format-2 encodings
		// holding the on-disk size down.
		if stats := db.DiskStats(); stats != nil {
			segs, bytes := 0, int64(0)
			for _, st := range stats {
				segs += st.Segments
				bytes += st.Bytes
			}
			resp["disk_tables"] = stats
			resp["disk_segments"] = segs
			resp["disk_bytes"] = bytes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGraph(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Elicitor().Graph())
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter q"))
		return
	}
	hits := s.p.Elicitor().Search(q)
	if hits == nil {
		hits = []string{}
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleFoci(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Elicitor().SuggestFoci())
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	focus := r.URL.Query().Get("focus")
	if focus == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter focus"))
		return
	}
	sg, err := s.p.Elicitor().Suggest(focus)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sg)
}

type requirementSummary struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Dimensions int    `json:"dimensions"`
	Measures   int    `json:"measures"`
	Slicers    int    `json:"slicers"`
}

func (s *Server) handleListRequirements(w http.ResponseWriter, _ *http.Request) {
	out := []requirementSummary{}
	for _, r := range s.p.Requirements() {
		out = append(out, requirementSummary{
			ID: r.ID, Name: r.Name,
			Dimensions: len(r.Dimensions), Measures: len(r.Measures), Slicers: len(r.Slicers),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// changeResponse is the JSON body returned by lifecycle mutations.
type changeResponse struct {
	RequirementID string  `json:"requirement_id"`
	Rederived     bool    `json:"rederived"`
	MDReused      int     `json:"md_matched_elements,omitempty"`
	ETLReused     int     `json:"etl_reused,omitempty"`
	ETLAdded      int     `json:"etl_added,omitempty"`
	ETLCostAfter  float64 `json:"etl_cost_after,omitempty"`
}

func changeBody(rep *core.ChangeReport) changeResponse {
	out := changeResponse{RequirementID: rep.RequirementID, Rederived: rep.Rederived}
	if rep.MD != nil {
		out.MDReused = len(rep.MD.MatchedFacts) + len(rep.MD.MatchedDimensions)
	}
	if rep.ETL != nil {
		out.ETLReused = rep.ETL.Reused
		out.ETLAdded = rep.ETL.Added
		out.ETLCostAfter = rep.ETL.CostAfter
	}
	return out
}

func (s *Server) readRequirement(w http.ResponseWriter, r *http.Request) (*xrq.Requirement, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	req, err := xrq.Unmarshal(string(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	return req, true
}

func (s *Server) handleAddRequirement(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readRequirement(w, r)
	if !ok {
		return
	}
	rep, err := s.p.AddRequirement(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "already registered") {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, changeBody(rep))
}

func (s *Server) handleGetRequirement(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, req := range s.p.Requirements() {
		if req.ID == id {
			text, err := xrq.Marshal(req)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			writeXML(w, http.StatusOK, text)
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", id))
}

func (s *Server) handleChangeRequirement(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readRequirement(w, r)
	if !ok {
		return
	}
	if req.ID != r.PathValue("id") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("body id %q does not match path id %q", req.ID, r.PathValue("id")))
		return
	}
	rep, err := s.p.ChangeRequirement(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "not registered") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, changeBody(rep))
}

func (s *Server) handleRemoveRequirement(w http.ResponseWriter, r *http.Request) {
	rep, err := s.p.RemoveRequirement(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, changeBody(rep))
}

func (s *Server) unified(w http.ResponseWriter) (*xmd.Schema, *xlm.Design, bool) {
	md, etl := s.p.Unified()
	if md == nil || etl == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no unified design; add requirements first"))
		return nil, nil, false
	}
	return md, etl, true
}

func (s *Server) handleUnifiedMD(w http.ResponseWriter, _ *http.Request) {
	md, _, ok := s.unified(w)
	if !ok {
		return
	}
	text, err := xmd.Marshal(md)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handleUnifiedETL(w http.ResponseWriter, _ *http.Request) {
	_, etl, ok := s.unified(w)
	if !ok {
		return
	}
	text, err := xlm.Marshal(etl)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handlePartialMD(w http.ResponseWriter, r *http.Request) {
	pd, ok := s.p.Partial(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", r.PathValue("id")))
		return
	}
	text, err := xmd.Marshal(pd.MD)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handlePartialETL(w http.ResponseWriter, r *http.Request) {
	pd, ok := s.p.Partial(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", r.PathValue("id")))
		return
	}
	text, err := xlm.Marshal(pd.ETL)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handleQuality(w http.ResponseWriter, _ *http.Request) {
	cost, err := s.p.EstimatedETLCost()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	sat := s.p.CheckSatisfiability()
	body := map[string]any{
		"etl_estimated_cost": cost,
		"satisfiable":        sat == nil,
	}
	if sat != nil {
		body["satisfiability_error"] = sat.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	database := r.URL.Query().Get("database")
	if database == "" {
		database = "quarry_dw"
	}
	dep, err := s.p.Deploy(database)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, dep)
}

type runResponse struct {
	Loaded        map[string]int64 `json:"loaded"`
	RowsProcessed int64            `json:"rows_processed"`
	ElapsedMicros int64            `json:"elapsed_us"`
	Operations    int              `json:"operations"`
}

// runRequest is the optional JSON body of POST /api/run; absent or
// zero fields keep the platform's configured engine options.
type runRequest struct {
	Parallelism int `json:"parallelism"`
	BatchSize   int `json:"batch_size"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	opts := s.p.EngineOptions()
	var body runRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if body.Parallelism != 0 {
		opts.Parallelism = body.Parallelism
	}
	if body.BatchSize != 0 {
		opts.BatchSize = body.BatchSize
	}
	res, err := s.p.RunWith(opts)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.WarehouseChanged()
	writeJSON(w, http.StatusOK, runResponse{
		Loaded:        res.Loaded,
		RowsProcessed: res.RowsProcessed(),
		ElapsedMicros: res.Elapsed.Microseconds(),
		Operations:    len(res.Stats),
	})
}
