// Package server exposes Quarry's components over HTTP-based RESTful
// APIs, mirroring the paper's service-oriented architecture (§2.6):
// the Requirements Elicitor's exploration endpoints, the requirement
// lifecycle (add/change/remove with automatic interpretation,
// integration and validation), access to the unified and partial
// design solutions in their logical XML formats, and the Design
// Deployer. Payloads are xRQ/xMD/xLM XML for designs and JSON for
// everything else.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"quarry/internal/core"
	"quarry/internal/olap"
	"quarry/internal/replication"
	"quarry/internal/shard"
	mf "quarry/internal/storage/manifest"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// Options tunes the serving layer.
type Options struct {
	// OLAPConcurrency bounds the number of OLAP queries executing at
	// once; excess requests queue. 0 means 2×GOMAXPROCS.
	OLAPConcurrency int
	// OLAPCacheSize is the capacity of the LRU result cache (entries);
	// 0 means 256, negative disables caching.
	OLAPCacheSize int
	// ReadOnly rejects every design- or warehouse-mutating endpoint
	// (requirement lifecycle, deploy, run) with 403 — the replica
	// posture: a replica's warehouse is written only by its syncer,
	// and its design only by the bootstrap replay.
	ReadOnly bool
	// ReplicaStatus, when set, marks this node a replica in
	// /api/health and reports its replication lag there.
	ReplicaStatus func() replication.Status
}

// Server serves a Platform.
type Server struct {
	p             *core.Platform
	mux           *http.ServeMux
	pool          chan struct{}
	readOnly      bool
	replicaStatus func() replication.Status
	// cache holds OLAP results keyed by query + warehouse version; it
	// is purged whenever /api/run reloads the warehouse.
	cache *olap.ResultCache
	// olapQueries/olapErrors count POST /api/olap traffic for
	// /api/olap/stats: every request increments olapQueries, and every
	// one that does not end in a 2xx (bad body, queue abandon, failed
	// execution) also increments olapErrors — so load harnesses can
	// reconcile their client-side accounting against the server's.
	olapQueries atomic.Int64
	olapErrors  atomic.Int64
	// refreshes tracks the background materialized-aggregate refreshes
	// kicked off by /api/run, so shutdown/tests can drain them.
	refreshes sync.WaitGroup
	// refreshMu/refreshActive/refreshAgain single-flight those
	// refreshes: rapid consecutive runs coalesce into one in-flight
	// refresh plus at most one follow-up (latest wins), instead of N
	// concurrent full materialization passes racing to install.
	refreshMu     sync.Mutex
	refreshActive bool
	refreshAgain  bool
}

// New wires the routes with default options.
func New(p *core.Platform) *Server { return NewWithOptions(p, Options{}) }

// NewWithOptions wires the routes.
func NewWithOptions(p *core.Platform, opts Options) *Server {
	if opts.OLAPConcurrency <= 0 {
		opts.OLAPConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.OLAPCacheSize == 0 {
		opts.OLAPCacheSize = 256
	}
	s := &Server{
		p:             p,
		mux:           http.NewServeMux(),
		pool:          make(chan struct{}, opts.OLAPConcurrency),
		readOnly:      opts.ReadOnly,
		replicaStatus: opts.ReplicaStatus,
		cache:         olap.NewResultCache(opts.OLAPCacheSize),
	}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/ontology/graph", s.handleGraph)
	s.mux.HandleFunc("GET /api/ontology/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/elicitor/foci", s.handleFoci)
	s.mux.HandleFunc("GET /api/elicitor/suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /api/requirements", s.handleListRequirements)
	s.mux.HandleFunc("POST /api/requirements", s.mutating(s.handleAddRequirement))
	s.mux.HandleFunc("GET /api/requirements/{id}", s.handleGetRequirement)
	s.mux.HandleFunc("PUT /api/requirements/{id}", s.mutating(s.handleChangeRequirement))
	s.mux.HandleFunc("DELETE /api/requirements/{id}", s.mutating(s.handleRemoveRequirement))
	s.mux.HandleFunc("GET /api/design/md", s.handleUnifiedMD)
	s.mux.HandleFunc("GET /api/design/etl", s.handleUnifiedETL)
	s.mux.HandleFunc("GET /api/design/md/partial/{id}", s.handlePartialMD)
	s.mux.HandleFunc("GET /api/design/etl/partial/{id}", s.handlePartialETL)
	s.mux.HandleFunc("GET /api/quality", s.handleQuality)
	s.mux.HandleFunc("POST /api/deploy", s.mutating(s.handleDeploy))
	s.mux.HandleFunc("POST /api/run", s.mutating(s.handleRun))
	s.mux.HandleFunc("GET /api/export/{notation}", s.handleExport)
	s.mux.HandleFunc("POST /api/olap", s.handleOLAP)
	s.mux.HandleFunc("POST /api/olap/partial", s.handleOLAPPartial)
	s.mux.HandleFunc("GET /api/olap/stats", s.handleOLAPStats)
	// Replication feed (the primary side of segment shipping): any
	// disk-backed node serves its committed manifest and immutable
	// segment files, so replicas can also chain off other replicas.
	s.mux.HandleFunc("GET /api/replication/manifest", s.handleReplicationManifest)
	s.mux.HandleFunc("GET /api/replication/segment/{name}", s.handleReplicationSegment)
	return s
}

// mutating gates a design- or warehouse-mutating handler behind the
// read-only flag.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.readOnly {
			writeErr(w, http.StatusForbidden, fmt.Errorf("this node is a read replica; send writes to the primary"))
			return
		}
		h(w, r)
	}
}

// olapRequest is the JSON body of POST /api/olap.
type olapRequest struct {
	Fact     string   `json:"fact"`
	GroupBy  []string `json:"group_by"`
	Measures []struct {
		Out  string `json:"out"`
		Func string `json:"func"`
		Col  string `json:"col"`
	} `json:"measures"`
	Filter string `json:"filter,omitempty"`
	// RollUp maps xMD dimension names to the hierarchy level to
	// aggregate at (e.g. {"Supplier": "Nation"}).
	RollUp map[string]string `json:"roll_up,omitempty"`
	// Dice applies a diamond dice before aggregation.
	Dice *struct {
		Func       string             `json:"func"`
		Col        string             `json:"col,omitempty"`
		Thresholds map[string]float64 `json:"thresholds"`
	} `json:"dice,omitempty"`
	// Oracle answers via the star-flow reference executor instead of
	// the vectorized fast path (slower; for cross-checking).
	Oracle bool `json:"oracle,omitempty"`
}

type olapResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func (s *Server) handleOLAP(w http.ResponseWriter, r *http.Request) {
	s.olapQueries.Add(1)
	var body olapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		s.olapErrors.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Cache lookup: canonical request JSON + current warehouse version.
	// A lookup keyed one version behind is merely a miss; storing is
	// the dangerous direction, so Put below keys by the version of the
	// snapshot the query ACTUALLY ran against (res.Version) — reading
	// the version here and reusing it for the Put would, when an ETL
	// run commits between the two, file a newer-snapshot result under
	// the older version's key and serve stale-keyed data forever
	// after. Hits are answered before touching the query pool, so
	// cached answers never queue behind heavy queries.
	var canonical []byte
	if db := s.p.DB(); db != nil {
		if c, err := json.Marshal(body); err == nil {
			canonical = c
			if res, ok := s.cache.Get(fmt.Sprintf("v%d:%s", db.Version(), c)); ok {
				w.Header().Set("X-Quarry-Cache", "hit")
				w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", res.Version))
				writeJSON(w, http.StatusOK, olapBody(res))
				return
			}
		}
	}
	// Bounded-concurrency query pool: at most cap(s.pool) queries
	// execute at once, the rest queue here. A client that disconnects
	// while queued abandons its slot request instead of burning a
	// query on an answer nobody will read; one that disconnects after
	// acquiring the slot cancels the query itself at its next batch
	// boundary (the request context flows into the executors).
	select {
	case s.pool <- struct{}{}:
	case <-r.Context().Done():
		s.olapErrors.Add(1)
		writeErr(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	defer func() { <-s.pool }()
	if testingOLAPBeforeQuery != nil {
		testingOLAPBeforeQuery()
	}
	oe, err := s.p.OLAP()
	if err != nil {
		s.olapErrors.Add(1)
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := olap.CubeQuery{Fact: body.Fact, GroupBy: body.GroupBy, Filter: body.Filter, RollUp: body.RollUp}
	for _, m := range body.Measures {
		q.Measures = append(q.Measures, olap.MeasureSpec{Out: m.Out, Func: m.Func, Col: m.Col})
	}
	if body.Dice != nil {
		q.Dice = &olap.DiceSpec{Func: body.Dice.Func, Col: body.Dice.Col, Thresholds: body.Dice.Thresholds}
	}
	var res *olap.Result
	if body.Oracle {
		res, err = oe.QueryStarFlowContext(r.Context(), q)
	} else {
		res, err = oe.QueryContext(r.Context(), q)
	}
	if err != nil {
		s.olapErrors.Add(1)
		if r.Context().Err() != nil {
			// Abandoned query: the slot was released early; there is no
			// client left to answer.
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if canonical != nil {
		s.cache.Put(fmt.Sprintf("v%d:%s", res.Version, canonical), res)
		w.Header().Set("X-Quarry-Cache", "miss")
	}
	// The version of the snapshot the answer actually came from, so
	// clients cross-checking two answers (e.g. quarrybench's oracle
	// spot checks) can tell version skew from disagreement.
	w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", res.Version))
	writeJSON(w, http.StatusOK, olapBody(res))
}

// handleOLAPPartial answers a cube query as pre-finalisation partial
// aggregates — the shard side of scatter-gather (see internal/shard).
// A non-sharded node answers as the single shard of a 1-way topology,
// which is also the degenerate case the identity tests pin. Requests
// share the OLAP query pool with /api/olap.
//
// With "oracle": true, the shard self-verifies before answering: it
// finalises its own partial as a 1-way merge and compares the bytes
// against its local star-flow reference executor over the same
// partition; a mismatch is a 500, never a wrong partial.
func (s *Server) handleOLAPPartial(w http.ResponseWriter, r *http.Request) {
	var body olapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	select {
	case s.pool <- struct{}{}:
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	defer func() { <-s.pool }()
	oe, err := s.p.OLAP()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := olap.CubeQuery{Fact: body.Fact, GroupBy: body.GroupBy, Filter: body.Filter, RollUp: body.RollUp}
	for _, m := range body.Measures {
		q.Measures = append(q.Measures, olap.MeasureSpec{Out: m.Out, Func: m.Func, Col: m.Col})
	}
	if body.Dice != nil {
		q.Dice = &olap.DiceSpec{Func: body.Dice.Func, Col: body.Dice.Col, Thresholds: body.Dice.Thresholds}
	}
	partial, err := oe.QueryPartialContext(r.Context(), q)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	spec := s.p.Shard()
	if !spec.Enabled() {
		spec = shard.Spec{Index: 0, Count: 1}
	}
	resp := shard.EncodePartial(spec.Index, spec.Count, partial.Version, partial.Columns, partial.GroupCols, partial.Aggs, partial.Groups)
	if body.Oracle {
		if err := s.selfVerifyPartial(r, oe, q, partial); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", partial.Version))
	writeJSON(w, http.StatusOK, resp)
}

// selfVerifyPartial finalises the shard's own partial as a 1-way merge
// and compares the rendered rows byte-for-byte against the star-flow
// reference executor over the same local partition.
func (s *Server) selfVerifyPartial(r *http.Request, oe *olap.Engine, q olap.CubeQuery, partial *olap.Partial) error {
	solo := shard.EncodePartial(0, 1, partial.Version, partial.Columns, partial.GroupCols, partial.Aggs, partial.Groups)
	cols, rows, _, err := shard.Merge([]*shard.PartialResponse{solo})
	if err != nil {
		return fmt.Errorf("self-verify: finalising own partial: %w", err)
	}
	want, err := oe.QueryStarFlowContext(r.Context(), q)
	if err != nil {
		return fmt.Errorf("self-verify: reference executor: %w", err)
	}
	if len(cols) != len(want.Columns) || len(rows) != len(want.Rows) {
		return fmt.Errorf("self-verify: partial finalises to %dx%d, reference is %dx%d", len(rows), len(cols), len(want.Rows), len(want.Columns))
	}
	for i, row := range rows {
		got := olap.RenderRow(row)
		ref := olap.RenderRow(want.Rows[i])
		for j := range got {
			if got[j] != ref[j] {
				return fmt.Errorf("self-verify: row %d column %q: partial %q, reference %q", i, cols[j], got[j], ref[j])
			}
		}
	}
	return nil
}

// testingOLAPBeforeQuery, when set, runs after the cache miss — with
// the query slot already held — and before query execution: the seam
// race-shaped tests use to commit an ETL run, or cancel the client,
// inside that window. Never set outside tests.
var testingOLAPBeforeQuery func()

// olapStatsResponse is the admin view of the serving layer's caches.
type olapStatsResponse struct {
	// Raw POST /api/olap traffic counters (errors counts every request
	// that did not end in a 2xx, including abandoned queued queries).
	Queries     int64 `json:"queries"`
	QueryErrors int64 `json:"query_errors"`
	// Result cache (query + version keyed LRU).
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// Warehouse structural version (bumped once per ETL run commit).
	WarehouseVersion uint64 `json:"warehouse_version"`
	// Materialized-aggregate store; null when disabled.
	MatAgg *olap.MatAggStats `json:"matagg,omitempty"`
}

// scheduleMatAggRefresh kicks a background aggregate refresh with
// single-flight coalescing: if one is already running, it is flagged
// to run once more when done (picking up the newest version) instead
// of spawning a redundant concurrent materialization pass whose
// entries the store's install guard would discard anyway.
func (s *Server) scheduleMatAggRefresh() {
	mat := s.p.MatAgg()
	if mat == nil {
		return
	}
	s.refreshMu.Lock()
	if s.refreshActive {
		s.refreshAgain = true
		s.refreshMu.Unlock()
		return
	}
	s.refreshActive = true
	s.refreshMu.Unlock()
	s.refreshes.Add(1)
	go func() {
		defer s.refreshes.Done()
		for {
			if oe, err := s.p.OLAP(); err == nil {
				_, _ = mat.Refresh(oe) // failures are surfaced via /api/olap/stats
			}
			s.refreshMu.Lock()
			if !s.refreshAgain {
				s.refreshActive = false
				s.refreshMu.Unlock()
				return
			}
			s.refreshAgain = false
			s.refreshMu.Unlock()
		}
	}()
}

func (s *Server) handleOLAPStats(w http.ResponseWriter, _ *http.Request) {
	var out olapStatsResponse
	out.Queries = s.olapQueries.Load()
	out.QueryErrors = s.olapErrors.Load()
	out.CacheHits, out.CacheMisses = s.cache.Stats()
	out.CacheEntries = s.cache.Len()
	if db := s.p.DB(); db != nil {
		out.WarehouseVersion = db.Version()
	}
	if mat := s.p.MatAgg(); mat != nil {
		st := mat.Stats()
		out.MatAgg = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func olapBody(res *olap.Result) olapResponse {
	out := olapResponse{Columns: res.Columns, Rows: [][]string{}}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, olap.RenderRow(row))
	}
	return out
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	text, err := s.p.ExportFlow(r.PathValue("notation"))
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "no exporter") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, text)
}

// WarehouseChanged tells the serving layer the warehouse moved to a
// new committed version: cached OLAP results are purged (they are
// version-keyed, so this is hygiene, not correctness) and the hot
// aggregates re-materialize in the background. /api/run calls it
// after an ETL commit; a replica's sync loop calls it after adopting
// a new manifest.
func (s *Server) WarehouseChanged() {
	s.cache.Purge()
	// Until the refresh completes, queries fall back to the base-fact
	// path — the per-entry version check makes serving a stale
	// aggregate impossible either way.
	s.scheduleMatAggRefresh()
}

// handleReplicationManifest streams the committed manifest of a
// disk-backed warehouse — the entry point of the replication
// protocol. Reading the file (not the in-memory catalog) is what
// keeps the feed byte-identical to the commit point: whatever rename
// last landed is what replicas adopt.
func (s *Server) handleReplicationManifest(w http.ResponseWriter, _ *http.Request) {
	dir := s.storageDir()
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("replication requires a disk-backed warehouse (-data-dir)"))
		return
	}
	f, err := os.Open(filepath.Join(dir, mf.FileName))
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no committed manifest yet"))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// handleReplicationSegment streams one immutable segment file. A 404
// means the segment was garbage-collected since the manifest the
// replica is working from (a republish or compaction landed); the
// replica's next pass fetches the newer manifest.
func (s *Server) handleReplicationSegment(w http.ResponseWriter, r *http.Request) {
	dir := s.storageDir()
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("replication requires a disk-backed warehouse (-data-dir)"))
		return
	}
	name := r.PathValue("name")
	// The name check doubles as the path-traversal guard: segment
	// names contain no separators or dots beyond their fixed suffix.
	if !mf.IsSegmentName(name) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid segment name %q", name))
		return
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("segment %s no longer exists (superseded by a newer commit)", name))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

func (s *Server) storageDir() string {
	if db := s.p.DB(); db != nil {
		return db.StorageDir()
	}
	return ""
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeXML(w http.ResponseWriter, status int, text string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, text)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// Operational fingerprint of the warehouse: which backend it runs
	// on ("disk" backends name their directory), and the committed
	// version — the same version every OLAP result and materialized
	// aggregate is keyed on, so operators can correlate cache
	// behaviour with reloads.
	resp := map[string]any{"status": "ok"}
	if s.replicaStatus != nil {
		resp["role"] = "replica"
		resp["replica"] = s.replicaStatus()
	} else {
		resp["role"] = "primary"
	}
	// Shard identity + epoch: what the gather router polls to verify
	// the topology it scatters over, and what an operator compares
	// across shards to spot a node loading out of lockstep.
	if spec := s.p.Shard(); spec.Enabled() {
		resp["shard_index"] = spec.Index
		resp["shard_count"] = spec.Count
		if db := s.p.DB(); db != nil {
			resp["epoch"] = db.Version()
		}
	}
	if db := s.p.DB(); db != nil {
		backend := "memory"
		if dir := db.StorageDir(); dir != "" {
			backend = "disk"
			resp["storage_dir"] = dir
		}
		resp["storage"] = backend
		resp["warehouse_version"] = db.Version()
		// Disk footprint: per-table segment counts and bytes, plus the
		// totals — the numbers an operator watches to see compaction
		// keeping segment counts bounded and the format-2 encodings
		// holding the on-disk size down.
		if stats := db.DiskStats(); stats != nil {
			segs, bytes := 0, int64(0)
			for _, st := range stats {
				segs += st.Segments
				bytes += st.Bytes
			}
			resp["disk_tables"] = stats
			resp["disk_segments"] = segs
			resp["disk_bytes"] = bytes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGraph(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Elicitor().Graph())
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter q"))
		return
	}
	hits := s.p.Elicitor().Search(q)
	if hits == nil {
		hits = []string{}
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleFoci(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Elicitor().SuggestFoci())
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	focus := r.URL.Query().Get("focus")
	if focus == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter focus"))
		return
	}
	sg, err := s.p.Elicitor().Suggest(focus)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sg)
}

type requirementSummary struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Dimensions int    `json:"dimensions"`
	Measures   int    `json:"measures"`
	Slicers    int    `json:"slicers"`
}

func (s *Server) handleListRequirements(w http.ResponseWriter, _ *http.Request) {
	out := []requirementSummary{}
	for _, r := range s.p.Requirements() {
		out = append(out, requirementSummary{
			ID: r.ID, Name: r.Name,
			Dimensions: len(r.Dimensions), Measures: len(r.Measures), Slicers: len(r.Slicers),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// changeResponse is the JSON body returned by lifecycle mutations.
type changeResponse struct {
	RequirementID string  `json:"requirement_id"`
	Rederived     bool    `json:"rederived"`
	MDReused      int     `json:"md_matched_elements,omitempty"`
	ETLReused     int     `json:"etl_reused,omitempty"`
	ETLAdded      int     `json:"etl_added,omitempty"`
	ETLCostAfter  float64 `json:"etl_cost_after,omitempty"`
}

func changeBody(rep *core.ChangeReport) changeResponse {
	out := changeResponse{RequirementID: rep.RequirementID, Rederived: rep.Rederived}
	if rep.MD != nil {
		out.MDReused = len(rep.MD.MatchedFacts) + len(rep.MD.MatchedDimensions)
	}
	if rep.ETL != nil {
		out.ETLReused = rep.ETL.Reused
		out.ETLAdded = rep.ETL.Added
		out.ETLCostAfter = rep.ETL.CostAfter
	}
	return out
}

func (s *Server) readRequirement(w http.ResponseWriter, r *http.Request) (*xrq.Requirement, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	req, err := xrq.Unmarshal(string(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	return req, true
}

func (s *Server) handleAddRequirement(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readRequirement(w, r)
	if !ok {
		return
	}
	rep, err := s.p.AddRequirement(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "already registered") {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, changeBody(rep))
}

func (s *Server) handleGetRequirement(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, req := range s.p.Requirements() {
		if req.ID == id {
			text, err := xrq.Marshal(req)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			writeXML(w, http.StatusOK, text)
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", id))
}

func (s *Server) handleChangeRequirement(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readRequirement(w, r)
	if !ok {
		return
	}
	if req.ID != r.PathValue("id") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("body id %q does not match path id %q", req.ID, r.PathValue("id")))
		return
	}
	rep, err := s.p.ChangeRequirement(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "not registered") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, changeBody(rep))
}

func (s *Server) handleRemoveRequirement(w http.ResponseWriter, r *http.Request) {
	rep, err := s.p.RemoveRequirement(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, changeBody(rep))
}

func (s *Server) unified(w http.ResponseWriter) (*xmd.Schema, *xlm.Design, bool) {
	md, etl := s.p.Unified()
	if md == nil || etl == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no unified design; add requirements first"))
		return nil, nil, false
	}
	return md, etl, true
}

func (s *Server) handleUnifiedMD(w http.ResponseWriter, _ *http.Request) {
	md, _, ok := s.unified(w)
	if !ok {
		return
	}
	text, err := xmd.Marshal(md)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handleUnifiedETL(w http.ResponseWriter, _ *http.Request) {
	_, etl, ok := s.unified(w)
	if !ok {
		return
	}
	text, err := xlm.Marshal(etl)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handlePartialMD(w http.ResponseWriter, r *http.Request) {
	pd, ok := s.p.Partial(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", r.PathValue("id")))
		return
	}
	text, err := xmd.Marshal(pd.MD)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handlePartialETL(w http.ResponseWriter, r *http.Request) {
	pd, ok := s.p.Partial(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", r.PathValue("id")))
		return
	}
	text, err := xlm.Marshal(pd.ETL)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handleQuality(w http.ResponseWriter, _ *http.Request) {
	cost, err := s.p.EstimatedETLCost()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	sat := s.p.CheckSatisfiability()
	body := map[string]any{
		"etl_estimated_cost": cost,
		"satisfiable":        sat == nil,
	}
	if sat != nil {
		body["satisfiability_error"] = sat.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	database := r.URL.Query().Get("database")
	if database == "" {
		database = "quarry_dw"
	}
	dep, err := s.p.Deploy(database)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, dep)
}

type runResponse struct {
	Loaded        map[string]int64 `json:"loaded"`
	RowsProcessed int64            `json:"rows_processed"`
	ElapsedMicros int64            `json:"elapsed_us"`
	Operations    int              `json:"operations"`
}

// runRequest is the optional JSON body of POST /api/run; absent or
// zero fields keep the platform's configured engine options.
type runRequest struct {
	Parallelism int `json:"parallelism"`
	BatchSize   int `json:"batch_size"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	opts := s.p.EngineOptions()
	var body runRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if body.Parallelism != 0 {
		opts.Parallelism = body.Parallelism
	}
	if body.BatchSize != 0 {
		opts.BatchSize = body.BatchSize
	}
	res, err := s.p.RunWith(opts)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.WarehouseChanged()
	writeJSON(w, http.StatusOK, runResponse{
		Loaded:        res.Loaded,
		RowsProcessed: res.RowsProcessed(),
		ElapsedMicros: res.Elapsed.Microseconds(),
		Operations:    len(res.Stats),
	})
}
