// Package server exposes Quarry's components over HTTP-based RESTful
// APIs, mirroring the paper's service-oriented architecture (§2.6):
// the Requirements Elicitor's exploration endpoints, the requirement
// lifecycle (add/change/remove with automatic interpretation,
// integration and validation), access to the unified and partial
// design solutions in their logical XML formats, and the Design
// Deployer. Payloads are xRQ/xMD/xLM XML for designs and JSON for
// everything else.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"quarry/internal/core"
	"quarry/internal/olap"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// Options tunes the serving layer.
type Options struct {
	// OLAPConcurrency bounds the number of OLAP queries executing at
	// once; excess requests queue. 0 means 2×GOMAXPROCS.
	OLAPConcurrency int
	// OLAPCacheSize is the capacity of the LRU result cache (entries);
	// 0 means 256, negative disables caching.
	OLAPCacheSize int
}

// Server serves a Platform.
type Server struct {
	p    *core.Platform
	mux  *http.ServeMux
	pool chan struct{}
	// cache holds OLAP results keyed by query + warehouse version; it
	// is purged whenever /api/run reloads the warehouse.
	cache *olap.ResultCache
	// refreshes tracks the background materialized-aggregate refreshes
	// kicked off by /api/run, so shutdown/tests can drain them.
	refreshes sync.WaitGroup
	// refreshMu/refreshActive/refreshAgain single-flight those
	// refreshes: rapid consecutive runs coalesce into one in-flight
	// refresh plus at most one follow-up (latest wins), instead of N
	// concurrent full materialization passes racing to install.
	refreshMu     sync.Mutex
	refreshActive bool
	refreshAgain  bool
}

// New wires the routes with default options.
func New(p *core.Platform) *Server { return NewWithOptions(p, Options{}) }

// NewWithOptions wires the routes.
func NewWithOptions(p *core.Platform, opts Options) *Server {
	if opts.OLAPConcurrency <= 0 {
		opts.OLAPConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.OLAPCacheSize == 0 {
		opts.OLAPCacheSize = 256
	}
	s := &Server{
		p:     p,
		mux:   http.NewServeMux(),
		pool:  make(chan struct{}, opts.OLAPConcurrency),
		cache: olap.NewResultCache(opts.OLAPCacheSize),
	}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/ontology/graph", s.handleGraph)
	s.mux.HandleFunc("GET /api/ontology/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/elicitor/foci", s.handleFoci)
	s.mux.HandleFunc("GET /api/elicitor/suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /api/requirements", s.handleListRequirements)
	s.mux.HandleFunc("POST /api/requirements", s.handleAddRequirement)
	s.mux.HandleFunc("GET /api/requirements/{id}", s.handleGetRequirement)
	s.mux.HandleFunc("PUT /api/requirements/{id}", s.handleChangeRequirement)
	s.mux.HandleFunc("DELETE /api/requirements/{id}", s.handleRemoveRequirement)
	s.mux.HandleFunc("GET /api/design/md", s.handleUnifiedMD)
	s.mux.HandleFunc("GET /api/design/etl", s.handleUnifiedETL)
	s.mux.HandleFunc("GET /api/design/md/partial/{id}", s.handlePartialMD)
	s.mux.HandleFunc("GET /api/design/etl/partial/{id}", s.handlePartialETL)
	s.mux.HandleFunc("GET /api/quality", s.handleQuality)
	s.mux.HandleFunc("POST /api/deploy", s.handleDeploy)
	s.mux.HandleFunc("POST /api/run", s.handleRun)
	s.mux.HandleFunc("GET /api/export/{notation}", s.handleExport)
	s.mux.HandleFunc("POST /api/olap", s.handleOLAP)
	s.mux.HandleFunc("GET /api/olap/stats", s.handleOLAPStats)
	return s
}

// olapRequest is the JSON body of POST /api/olap.
type olapRequest struct {
	Fact     string   `json:"fact"`
	GroupBy  []string `json:"group_by"`
	Measures []struct {
		Out  string `json:"out"`
		Func string `json:"func"`
		Col  string `json:"col"`
	} `json:"measures"`
	Filter string `json:"filter,omitempty"`
	// RollUp maps xMD dimension names to the hierarchy level to
	// aggregate at (e.g. {"Supplier": "Nation"}).
	RollUp map[string]string `json:"roll_up,omitempty"`
	// Dice applies a diamond dice before aggregation.
	Dice *struct {
		Func       string             `json:"func"`
		Col        string             `json:"col,omitempty"`
		Thresholds map[string]float64 `json:"thresholds"`
	} `json:"dice,omitempty"`
	// Oracle answers via the star-flow reference executor instead of
	// the vectorized fast path (slower; for cross-checking).
	Oracle bool `json:"oracle,omitempty"`
}

type olapResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func (s *Server) handleOLAP(w http.ResponseWriter, r *http.Request) {
	var body olapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Cache key: canonical request JSON + warehouse version. Every ETL
	// run bumps the version (PublishAll), so a result computed from a
	// pre-run snapshot can never be served post-run even if its Put
	// races handleRun's purge. Hits are answered before touching the
	// query pool, so cached answers never queue behind heavy queries.
	var key string
	if db := s.p.DB(); db != nil {
		canonical, err := json.Marshal(body)
		if err == nil {
			key = fmt.Sprintf("v%d:%s", db.Version(), canonical)
		}
	}
	if key != "" {
		if res, ok := s.cache.Get(key); ok {
			w.Header().Set("X-Quarry-Cache", "hit")
			writeJSON(w, http.StatusOK, olapBody(res))
			return
		}
	}
	// Bounded-concurrency query pool: at most cap(s.pool) queries
	// execute at once, the rest queue here. A client that disconnects
	// while queued abandons its slot request instead of burning a
	// query on an answer nobody will read.
	select {
	case s.pool <- struct{}{}:
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	defer func() { <-s.pool }()
	oe, err := s.p.OLAP()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := olap.CubeQuery{Fact: body.Fact, GroupBy: body.GroupBy, Filter: body.Filter, RollUp: body.RollUp}
	for _, m := range body.Measures {
		q.Measures = append(q.Measures, olap.MeasureSpec{Out: m.Out, Func: m.Func, Col: m.Col})
	}
	if body.Dice != nil {
		q.Dice = &olap.DiceSpec{Func: body.Dice.Func, Col: body.Dice.Col, Thresholds: body.Dice.Thresholds}
	}
	var res *olap.Result
	if body.Oracle {
		res, err = oe.QueryStarFlow(q)
	} else {
		res, err = oe.Query(q)
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if key != "" {
		s.cache.Put(key, res)
		w.Header().Set("X-Quarry-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, olapBody(res))
}

// olapStatsResponse is the admin view of the serving layer's caches.
type olapStatsResponse struct {
	// Result cache (query + version keyed LRU).
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// Warehouse structural version (bumped once per ETL run commit).
	WarehouseVersion uint64 `json:"warehouse_version"`
	// Materialized-aggregate store; null when disabled.
	MatAgg *olap.MatAggStats `json:"matagg,omitempty"`
}

// scheduleMatAggRefresh kicks a background aggregate refresh with
// single-flight coalescing: if one is already running, it is flagged
// to run once more when done (picking up the newest version) instead
// of spawning a redundant concurrent materialization pass whose
// entries the store's install guard would discard anyway.
func (s *Server) scheduleMatAggRefresh() {
	mat := s.p.MatAgg()
	if mat == nil {
		return
	}
	s.refreshMu.Lock()
	if s.refreshActive {
		s.refreshAgain = true
		s.refreshMu.Unlock()
		return
	}
	s.refreshActive = true
	s.refreshMu.Unlock()
	s.refreshes.Add(1)
	go func() {
		defer s.refreshes.Done()
		for {
			if oe, err := s.p.OLAP(); err == nil {
				_, _ = mat.Refresh(oe) // failures are surfaced via /api/olap/stats
			}
			s.refreshMu.Lock()
			if !s.refreshAgain {
				s.refreshActive = false
				s.refreshMu.Unlock()
				return
			}
			s.refreshAgain = false
			s.refreshMu.Unlock()
		}
	}()
}

func (s *Server) handleOLAPStats(w http.ResponseWriter, _ *http.Request) {
	var out olapStatsResponse
	out.CacheHits, out.CacheMisses = s.cache.Stats()
	out.CacheEntries = s.cache.Len()
	if db := s.p.DB(); db != nil {
		out.WarehouseVersion = db.Version()
	}
	if mat := s.p.MatAgg(); mat != nil {
		st := mat.Stats()
		out.MatAgg = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func olapBody(res *olap.Result) olapResponse {
	out := olapResponse{Columns: res.Columns, Rows: [][]string{}}
	for _, row := range res.Rows {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = strings.Trim(v.String(), "'")
		}
		out.Rows = append(out.Rows, vals)
	}
	return out
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	text, err := s.p.ExportFlow(r.PathValue("notation"))
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "no exporter") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, text)
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeXML(w http.ResponseWriter, status int, text string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, text)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// Operational fingerprint of the warehouse: which backend it runs
	// on ("disk" backends name their directory), and the committed
	// version — the same version every OLAP result and materialized
	// aggregate is keyed on, so operators can correlate cache
	// behaviour with reloads.
	resp := map[string]any{"status": "ok"}
	if db := s.p.DB(); db != nil {
		backend := "memory"
		if dir := db.StorageDir(); dir != "" {
			backend = "disk"
			resp["storage_dir"] = dir
		}
		resp["storage"] = backend
		resp["warehouse_version"] = db.Version()
		// Disk footprint: per-table segment counts and bytes, plus the
		// totals — the numbers an operator watches to see compaction
		// keeping segment counts bounded and the format-2 encodings
		// holding the on-disk size down.
		if stats := db.DiskStats(); stats != nil {
			segs, bytes := 0, int64(0)
			for _, st := range stats {
				segs += st.Segments
				bytes += st.Bytes
			}
			resp["disk_tables"] = stats
			resp["disk_segments"] = segs
			resp["disk_bytes"] = bytes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGraph(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Elicitor().Graph())
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter q"))
		return
	}
	hits := s.p.Elicitor().Search(q)
	if hits == nil {
		hits = []string{}
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleFoci(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Elicitor().SuggestFoci())
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	focus := r.URL.Query().Get("focus")
	if focus == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter focus"))
		return
	}
	sg, err := s.p.Elicitor().Suggest(focus)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sg)
}

type requirementSummary struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Dimensions int    `json:"dimensions"`
	Measures   int    `json:"measures"`
	Slicers    int    `json:"slicers"`
}

func (s *Server) handleListRequirements(w http.ResponseWriter, _ *http.Request) {
	out := []requirementSummary{}
	for _, r := range s.p.Requirements() {
		out = append(out, requirementSummary{
			ID: r.ID, Name: r.Name,
			Dimensions: len(r.Dimensions), Measures: len(r.Measures), Slicers: len(r.Slicers),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// changeResponse is the JSON body returned by lifecycle mutations.
type changeResponse struct {
	RequirementID string  `json:"requirement_id"`
	Rederived     bool    `json:"rederived"`
	MDReused      int     `json:"md_matched_elements,omitempty"`
	ETLReused     int     `json:"etl_reused,omitempty"`
	ETLAdded      int     `json:"etl_added,omitempty"`
	ETLCostAfter  float64 `json:"etl_cost_after,omitempty"`
}

func changeBody(rep *core.ChangeReport) changeResponse {
	out := changeResponse{RequirementID: rep.RequirementID, Rederived: rep.Rederived}
	if rep.MD != nil {
		out.MDReused = len(rep.MD.MatchedFacts) + len(rep.MD.MatchedDimensions)
	}
	if rep.ETL != nil {
		out.ETLReused = rep.ETL.Reused
		out.ETLAdded = rep.ETL.Added
		out.ETLCostAfter = rep.ETL.CostAfter
	}
	return out
}

func (s *Server) readRequirement(w http.ResponseWriter, r *http.Request) (*xrq.Requirement, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	req, err := xrq.Unmarshal(string(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	return req, true
}

func (s *Server) handleAddRequirement(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readRequirement(w, r)
	if !ok {
		return
	}
	rep, err := s.p.AddRequirement(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "already registered") {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, changeBody(rep))
}

func (s *Server) handleGetRequirement(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, req := range s.p.Requirements() {
		if req.ID == id {
			text, err := xrq.Marshal(req)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			writeXML(w, http.StatusOK, text)
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", id))
}

func (s *Server) handleChangeRequirement(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readRequirement(w, r)
	if !ok {
		return
	}
	if req.ID != r.PathValue("id") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("body id %q does not match path id %q", req.ID, r.PathValue("id")))
		return
	}
	rep, err := s.p.ChangeRequirement(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "not registered") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, changeBody(rep))
}

func (s *Server) handleRemoveRequirement(w http.ResponseWriter, r *http.Request) {
	rep, err := s.p.RemoveRequirement(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, changeBody(rep))
}

func (s *Server) unified(w http.ResponseWriter) (*xmd.Schema, *xlm.Design, bool) {
	md, etl := s.p.Unified()
	if md == nil || etl == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no unified design; add requirements first"))
		return nil, nil, false
	}
	return md, etl, true
}

func (s *Server) handleUnifiedMD(w http.ResponseWriter, _ *http.Request) {
	md, _, ok := s.unified(w)
	if !ok {
		return
	}
	text, err := xmd.Marshal(md)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handleUnifiedETL(w http.ResponseWriter, _ *http.Request) {
	_, etl, ok := s.unified(w)
	if !ok {
		return
	}
	text, err := xlm.Marshal(etl)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handlePartialMD(w http.ResponseWriter, r *http.Request) {
	pd, ok := s.p.Partial(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", r.PathValue("id")))
		return
	}
	text, err := xmd.Marshal(pd.MD)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handlePartialETL(w http.ResponseWriter, r *http.Request) {
	pd, ok := s.p.Partial(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("requirement %q not registered", r.PathValue("id")))
		return
	}
	text, err := xlm.Marshal(pd.ETL)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeXML(w, http.StatusOK, text)
}

func (s *Server) handleQuality(w http.ResponseWriter, _ *http.Request) {
	cost, err := s.p.EstimatedETLCost()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	sat := s.p.CheckSatisfiability()
	body := map[string]any{
		"etl_estimated_cost": cost,
		"satisfiable":        sat == nil,
	}
	if sat != nil {
		body["satisfiability_error"] = sat.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	database := r.URL.Query().Get("database")
	if database == "" {
		database = "quarry_dw"
	}
	dep, err := s.p.Deploy(database)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, dep)
}

type runResponse struct {
	Loaded        map[string]int64 `json:"loaded"`
	RowsProcessed int64            `json:"rows_processed"`
	ElapsedMicros int64            `json:"elapsed_us"`
	Operations    int              `json:"operations"`
}

// runRequest is the optional JSON body of POST /api/run; absent or
// zero fields keep the platform's configured engine options.
type runRequest struct {
	Parallelism int `json:"parallelism"`
	BatchSize   int `json:"batch_size"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	opts := s.p.EngineOptions()
	var body runRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if body.Parallelism != 0 {
		opts.Parallelism = body.Parallelism
	}
	if body.BatchSize != 0 {
		opts.BatchSize = body.BatchSize
	}
	res, err := s.p.RunWith(opts)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	// The warehouse changed: cached OLAP results are stale.
	s.cache.Purge()
	// Re-materialize hot aggregates at the new version in the
	// background. Until it completes, queries fall back to the
	// base-fact path — the per-entry version check makes serving a
	// stale aggregate impossible either way.
	s.scheduleMatAggRefresh()
	writeJSON(w, http.StatusOK, runResponse{
		Loaded:        res.Loaded,
		RowsProcessed: res.RowsProcessed(),
		ElapsedMicros: res.Elapsed.Microseconds(),
		Operations:    len(res.Stats),
	})
}
