package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quarry/internal/core"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, 1, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := readAll(&buf, resp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, wantStatus, buf.String())
	}
	return []byte(buf.String())
}

func readAll(buf *strings.Builder, resp *http.Response) (int64, error) {
	b := make([]byte, 64<<10)
	var total int64
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		total += int64(n)
		if err != nil {
			if err.Error() == "EOF" {
				return total, nil
			}
			return total, nil
		}
	}
}

func postXML(t *testing.T, ts *httptest.Server, path, body string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	readAll(&buf, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d: %s", path, resp.StatusCode, wantStatus, buf.String())
	}
	return []byte(buf.String())
}

func TestHealthAndExploration(t *testing.T) {
	ts := newTestServer(t)
	get(t, ts, "/api/health", http.StatusOK)

	var graph struct {
		Nodes []struct{ ID string }     `json:"nodes"`
		Links []struct{ Source string } `json:"links"`
	}
	if err := json.Unmarshal(get(t, ts, "/api/ontology/graph", http.StatusOK), &graph); err != nil {
		t.Fatal(err)
	}
	if len(graph.Nodes) != 8 || len(graph.Links) != 8 {
		t.Errorf("graph = %d nodes %d links", len(graph.Nodes), len(graph.Links))
	}

	var hits []string
	if err := json.Unmarshal(get(t, ts, "/api/ontology/search?q=name", http.StatusOK), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("no search hits")
	}
	get(t, ts, "/api/ontology/search", http.StatusBadRequest)

	var foci []struct{ Concept string }
	if err := json.Unmarshal(get(t, ts, "/api/elicitor/foci", http.StatusOK), &foci); err != nil {
		t.Fatal(err)
	}
	if foci[0].Concept != "Lineitem" {
		t.Errorf("top focus = %v", foci[0])
	}

	var sg struct {
		Dimensions []struct{ Concept string }
	}
	if err := json.Unmarshal(get(t, ts, "/api/elicitor/suggest?focus=Lineitem", http.StatusOK), &sg); err != nil {
		t.Fatal(err)
	}
	if len(sg.Dimensions) == 0 {
		t.Error("no dimension suggestions")
	}
	get(t, ts, "/api/elicitor/suggest?focus=Ghost", http.StatusNotFound)
	get(t, ts, "/api/elicitor/suggest", http.StatusBadRequest)
}

// TestHealthReportsDiskFootprint: against a disk-backed warehouse,
// /api/health exposes per-table segment counts and bytes plus the
// totals — the compaction and compression observability surface.
func TestHealthReportsDiskFootprint(t *testing.T) {
	o, _ := tpch.Ontology()
	m, _ := tpch.Mapping()
	c, _ := tpch.Catalog(1)
	db, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpch.Generate(db, 1, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p).Handler())
	t.Cleanup(ts.Close)

	var health struct {
		Storage      string `json:"storage"`
		DiskSegments int64  `json:"disk_segments"`
		DiskBytes    int64  `json:"disk_bytes"`
		DiskTables   map[string]struct {
			Segments int64 `json:"segments"`
			Bytes    int64 `json:"bytes"`
		} `json:"disk_tables"`
	}
	if err := json.Unmarshal(get(t, ts, "/api/health", http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if health.Storage != "disk" {
		t.Fatalf("storage = %q, want disk", health.Storage)
	}
	if health.DiskSegments <= 0 || health.DiskBytes <= 0 {
		t.Fatalf("disk totals empty: %d segments, %d bytes", health.DiskSegments, health.DiskBytes)
	}
	fact, ok := health.DiskTables["fact_table_revenue"]
	if !ok {
		t.Fatal("disk_tables lacks fact_table_revenue")
	}
	if fact.Segments <= 0 || fact.Bytes <= 0 {
		t.Fatalf("fact table stats empty: %+v", fact)
	}
}

func TestRequirementLifecycleOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	revenueXML, err := xrq.Marshal(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}

	// No designs yet.
	get(t, ts, "/api/design/md", http.StatusNotFound)

	// Add.
	body := postXML(t, ts, "/api/requirements", revenueXML, http.StatusCreated)
	var change struct {
		RequirementID string `json:"requirement_id"`
		ETLAdded      int    `json:"etl_added"`
	}
	if err := json.Unmarshal(body, &change); err != nil {
		t.Fatal(err)
	}
	if change.RequirementID != "IR_revenue" || change.ETLAdded == 0 {
		t.Errorf("change = %+v", change)
	}

	// Duplicate → 409.
	postXML(t, ts, "/api/requirements", revenueXML, http.StatusConflict)

	// Malformed body → 400.
	postXML(t, ts, "/api/requirements", "not xml", http.StatusBadRequest)

	// Invalid requirement → 422.
	bad := &xrq.Requirement{
		ID:         "IR_bad",
		Dimensions: []xrq.Dimension{{Concept: "Lineitem.l_returnflag"}},
		Measures:   []xrq.Measure{{ID: "m", Function: "Orders.o_totalprice"}},
	}
	badXML, _ := xrq.Marshal(bad)
	postXML(t, ts, "/api/requirements", badXML, http.StatusUnprocessableEntity)

	// List.
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(get(t, ts, "/api/requirements", http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "IR_revenue" {
		t.Errorf("list = %v", list)
	}

	// Fetch back as xRQ.
	xml := string(get(t, ts, "/api/requirements/IR_revenue", http.StatusOK))
	if !strings.Contains(xml, `<cube id="IR_revenue"`) {
		t.Errorf("xRQ = %s", xml)
	}
	get(t, ts, "/api/requirements/ghost", http.StatusNotFound)

	// Unified designs as XML.
	md := string(get(t, ts, "/api/design/md", http.StatusOK))
	if !strings.Contains(md, "<MDschema") || !strings.Contains(md, "fact_table_revenue") {
		t.Errorf("md = %s", md)
	}
	etl := string(get(t, ts, "/api/design/etl", http.StatusOK))
	if !strings.Contains(etl, "<design") {
		t.Errorf("etl = %s", etl)
	}
	get(t, ts, "/api/design/md/partial/IR_revenue", http.StatusOK)
	get(t, ts, "/api/design/etl/partial/IR_revenue", http.StatusOK)
	get(t, ts, "/api/design/md/partial/ghost", http.StatusNotFound)

	// Quality factors.
	var q struct {
		Cost        float64 `json:"etl_estimated_cost"`
		Satisfiable bool    `json:"satisfiable"`
	}
	if err := json.Unmarshal(get(t, ts, "/api/quality", http.StatusOK), &q); err != nil {
		t.Fatal(err)
	}
	if q.Cost <= 0 || !q.Satisfiable {
		t.Errorf("quality = %+v", q)
	}

	// Deploy.
	dep := postXML(t, ts, "/api/deploy?database=demo", "", http.StatusOK)
	var depBody struct {
		DDL string `json:"DDL"`
		PDI string `json:"PDI"`
	}
	if err := json.Unmarshal(dep, &depBody); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(depBody.DDL, "CREATE TABLE") || !strings.Contains(depBody.PDI, "<transformation>") {
		t.Error("deployment artifacts missing")
	}

	// Run.
	run := postXML(t, ts, "/api/run", "", http.StatusOK)
	var runBody struct {
		Loaded map[string]int64 `json:"loaded"`
	}
	if err := json.Unmarshal(run, &runBody); err != nil {
		t.Fatal(err)
	}
	if runBody.Loaded["fact_table_revenue"] == 0 {
		t.Errorf("run = %+v", runBody)
	}

	// Run first, then ask an OLAP question over the deployed DW.
	postXML(t, ts, "/api/run", "", http.StatusOK)
	olapBody := `{"fact":"fact_table_revenue","group_by":["n_name"],` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}]}`
	resp2, err := http.Post(ts.URL+"/api/olap", "application/json", strings.NewReader(olapBody))
	if err != nil {
		t.Fatal(err)
	}
	var olapOut struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("POST /api/olap = %d", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&olapOut); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(olapOut.Rows) != 1 || olapOut.Rows[0][0] != "SPAIN" {
		t.Errorf("olap rows = %v", olapOut.Rows)
	}
	// Malformed OLAP bodies.
	resp3, _ := http.Post(ts.URL+"/api/olap", "application/json", strings.NewReader("not json"))
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad olap body = %d", resp3.StatusCode)
	}
	resp3.Body.Close()

	// Export notations.
	sql := string(get(t, ts, "/api/export/sql", http.StatusOK))
	if !strings.Contains(sql, "INSERT INTO") {
		t.Error("SQL export malformed")
	}
	pig := string(get(t, ts, "/api/export/pig", http.StatusOK))
	if !strings.Contains(pig, "STORE") {
		t.Error("Pig export malformed")
	}
	get(t, ts, "/api/export/cobol", http.StatusNotFound)

	// Change (PUT) with mismatched id → 400.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/api/requirements/other", strings.NewReader(revenueXML))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT mismatch = %d", resp.StatusCode)
	}

	// Change slicer to France.
	changed := tpch.RevenueRequirement()
	changed.Slicers[0].Value = "FRANCE"
	changedXML, _ := xrq.Marshal(changed)
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/api/requirements/IR_revenue", strings.NewReader(changedXML))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("PUT = %d", resp.StatusCode)
	}
	etl2 := string(get(t, ts, "/api/design/etl", http.StatusOK))
	if !strings.Contains(etl2, "FRANCE") {
		t.Error("change not reflected in unified ETL")
	}

	// Delete.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/requirements/IR_revenue", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("DELETE = %d", resp.StatusCode)
	}
	var empty []any
	if err := json.Unmarshal(get(t, ts, "/api/requirements", http.StatusOK), &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("requirements after delete = %v", empty)
	}
}
