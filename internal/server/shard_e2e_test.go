package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quarry/internal/core"
	"quarry/internal/router"
	"quarry/internal/shard"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// End-to-end sharding: two real quarryd serving stacks, each holding
// one hash partition of the TPC-H fact, fronted by the gather router —
// the HTTP bodies must be byte-identical to an unsharded control node
// over the full data, and a dead shard must fail queries loudly.

// shardedTestPlatform builds one shard's platform (same source data as
// the control, partition-filtered load).
func shardedTestPlatform(t *testing.T, sf float64, spec shard.Spec) *core.Platform {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, sf, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db, Shard: spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

// shardQueryMix covers every measure type the merge algebra handles:
// int COUNT, float SUM and AVG (exactness-critical), string MIN/MAX,
// filters and roll-ups.
var shardQueryMix = []string{
	`{"fact":"fact_table_revenue","group_by":["n_name"],"measures":[{"out":"total","func":"SUM","col":"revenue"}]}`,
	`{"fact":"fact_table_revenue","group_by":["r_name"],"measures":[{"out":"avg_rev","func":"AVG","col":"revenue"},{"out":"n","func":"COUNT"}]}`,
	`{"fact":"fact_table_revenue","group_by":["p_brand"],"measures":[{"out":"min_type","func":"MIN","col":"p_type"},{"out":"max_type","func":"MAX","col":"p_type"},{"out":"total","func":"SUM","col":"revenue"}]}`,
	`{"fact":"fact_table_revenue","group_by":["s_name"],"measures":[{"out":"total","func":"SUM","col":"revenue"}],"filter":"p_retailprice > 950"}`,
	`{"fact":"fact_table_revenue","roll_up":{"Supplier":"Region"},"measures":[{"out":"avg_bal","func":"AVG","col":"s_acctbal"},{"out":"total","func":"SUM","col":"revenue"}]}`,
}

func TestShardGatherE2EByteIdentity(t *testing.T) {
	const sf = 2
	control := deployedTestPlatform(t, sf)
	controlTS := httptest.NewServer(New(control).Handler())
	t.Cleanup(controlTS.Close)

	shardTS := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range shardTS {
		p := shardedTestPlatform(t, sf, shard.Spec{Index: i, Count: 2})
		shardTS[i] = httptest.NewServer(New(p).Handler())
		t.Cleanup(shardTS[i].Close)
		urls[i] = shardTS[i].URL
	}
	g, err := router.NewShardGather(urls, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	gatherTS := httptest.NewServer(g.Handler())
	t.Cleanup(gatherTS.Close)

	client := &http.Client{}
	for i, q := range shardQueryMix {
		_, want := postOLAP(t, client, controlTS.URL, q)
		_, got := postOLAP(t, client, gatherTS.URL, q)
		if got != want {
			t.Fatalf("query %d: gathered HTTP body differs from single-node control\nquery: %s\n got: %s\nwant: %s", i, q, got, want)
		}
	}

	// Shard self-verification: each shard finalises its own partial and
	// compares it against its local star-flow reference executor.
	for i, ts := range shardTS {
		body := strings.TrimSuffix(shardQueryMix[0], "}") + `,"oracle":true}`
		resp, err := client.Post(ts.URL+"/api/olap/partial", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d failed self-verification: %d %s", i, resp.StatusCode, b)
		}
	}

	// Shard health reports identity and epoch.
	resp, err := client.Get(shardTS[1].URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		ShardIndex *int   `json:"shard_index"`
		ShardCount int    `json:"shard_count"`
		Epoch      uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.ShardIndex == nil || *health.ShardIndex != 1 || health.ShardCount != 2 {
		t.Fatalf("shard 1 health identity = %+v", health)
	}
	if health.Epoch == 0 {
		t.Fatal("shard health reports no epoch")
	}

	// Kill shard 1: the documented failure mode is a whole-query 502
	// that names the dead shard — never a partial answer.
	shardTS[1].Close()
	failResp, err := client.Post(gatherTS.URL+"/api/olap", "application/json", strings.NewReader(shardQueryMix[0]))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := io.ReadAll(failResp.Body)
	failResp.Body.Close()
	if failResp.StatusCode != http.StatusBadGateway {
		t.Fatalf("with shard 1 down: status %d (%s), want 502", failResp.StatusCode, fb)
	}
	if !strings.Contains(string(fb), "shard 1") || !strings.Contains(string(fb), "refusing partial answer") {
		t.Fatalf("failure mode not stated: %s", fb)
	}
}

// A diced query through the gather is refused by the shards (not
// distributive) and the rejection is forwarded verbatim.
func TestShardGatherForwardsDiceRejection(t *testing.T) {
	p := shardedTestPlatform(t, 1, shard.Spec{Index: 0, Count: 1})
	ts := httptest.NewServer(New(p).Handler())
	t.Cleanup(ts.Close)
	g, err := router.NewShardGather([]string{ts.URL}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	gatherTS := httptest.NewServer(g.Handler())
	t.Cleanup(gatherTS.Close)

	body := `{"fact":"fact_table_revenue","group_by":["n_name"],` +
		`"measures":[{"out":"n","func":"COUNT"}],` +
		`"dice":{"func":"COUNT","thresholds":{"n_name":2}}}`
	resp, err := http.Post(gatherTS.URL+"/api/olap", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "not distributive") {
		t.Fatalf("rejection reason missing: %s", b)
	}
}
