package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"quarry/internal/core"
	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// stressServer builds a server over a deployed warehouse with a small
// query pool and cache, returning the server and platform too.
// mataggTopK > 0 enables the materialized-aggregate subsystem.
func stressServer(t *testing.T, opts Options, mataggTopK int) (*httptest.Server, *Server, *core.Platform) {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(2)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, 2, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db, MatAggTopK: mataggTopK})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(p, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.refreshes.Wait() // drain background aggregate refreshes
	})
	return ts, srv, p
}

func postJSON(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const stressQuery = `{"fact":"fact_table_revenue","group_by":["p_brand"],` +
	`"roll_up":{"Supplier":"Nation"},` +
	`"measures":[{"out":"total","func":"SUM","col":"revenue"},{"out":"n","func":"COUNT"}]}`

// TestOLAPUnderConcurrentReloads hammers POST /api/olap from N
// goroutines while POST /api/run reloads the warehouse concurrently —
// with the materialized-aggregate subsystem on, so every reload also
// kicks a background aggregate refresh racing the traffic. The
// generator is deterministic, so a reload rebuilds identical tables:
// every OLAP response must therefore equal the canonical answer — a
// response computed from a half-loaded (torn) fact or dimension table,
// or served from an aggregate or cached build side of a mismatched
// version mid-rebuild, would differ or crash under -race. Run under
// -race this checks the locking discipline of the whole serving path.
func TestOLAPUnderConcurrentReloads(t *testing.T) {
	ts, _, _ := stressServer(t, Options{OLAPConcurrency: 4, OLAPCacheSize: -1}, 4)

	resp, body := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canonical query = %d: %s", resp.StatusCode, body)
	}
	var canonical struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &canonical); err != nil {
		t.Fatal(err)
	}
	if len(canonical.Rows) == 0 {
		t.Fatal("canonical query returned no rows")
	}

	stop := make(chan struct{})
	loadErrs := make(chan string, 1)
	go func() {
		defer close(loadErrs)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := postJSON(t, ts.URL+"/api/run", `{}`)
			if resp.StatusCode != http.StatusOK {
				loadErrs <- string(body)
				return
			}
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, body := postJSON(t, ts.URL+"/api/olap", stressQuery)
				if resp.StatusCode != http.StatusOK {
					errs <- string(body)
					return
				}
				var got struct {
					Columns []string   `json:"columns"`
					Rows    [][]string `json:"rows"`
				}
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- err.Error()
					return
				}
				if !reflect.DeepEqual(got.Columns, canonical.Columns) || !reflect.DeepEqual(got.Rows, canonical.Rows) {
					errs <- "response diverged from canonical answer (torn snapshot?)"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if msg, ok := <-loadErrs; ok && msg != "" {
		t.Fatalf("concurrent /api/run failed: %s", msg)
	}
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestOLAPCacheInvalidation: repeated queries hit the LRU cache, a
// reload invalidates it, and the post-reload answer is served fresh.
func TestOLAPCacheInvalidation(t *testing.T) {
	ts, _, _ := stressServer(t, Options{OLAPCacheSize: 16}, 0)
	resp1, body1 := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first query = %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("first query cache header = %q, want miss", got)
	}
	resp2, body2 := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if got := resp2.Header.Get("X-Quarry-Cache"); got != "hit" {
		t.Fatalf("second query cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached response differs from computed response")
	}
	// Reload: the cache must not serve the pre-reload entry.
	if resp, body := postJSON(t, ts.URL+"/api/run", `{}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, body)
	}
	resp3, body3 := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if got := resp3.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("post-reload cache header = %q, want miss", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("post-reload answer differs (deterministic data should reproduce it)")
	}
}

// TestOLAPRollUpAndDiceOverHTTP exercises the new request fields
// end-to-end, including the oracle switch.
func TestOLAPRollUpAndDiceOverHTTP(t *testing.T) {
	ts, _, _ := stressServer(t, Options{}, 0)
	body := `{"fact":"fact_table_revenue",` +
		`"roll_up":{"Supplier":"Region"},` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}]}`
	resp, out := postJSON(t, ts.URL+"/api/olap", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("roll-up query = %d: %s", resp.StatusCode, out)
	}
	var rollup struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out, &rollup); err != nil {
		t.Fatal(err)
	}
	if len(rollup.Columns) == 0 || rollup.Columns[0] != "r_name" {
		t.Fatalf("roll-up columns = %v", rollup.Columns)
	}
	if len(rollup.Rows) != 1 || rollup.Rows[0][0] != "EUROPE" {
		t.Fatalf("roll-up rows = %v", rollup.Rows)
	}
	// The oracle path returns the same body.
	oracleBody := body[:len(body)-1] + `,"oracle":true}`
	respO, outO := postJSON(t, ts.URL+"/api/olap", oracleBody)
	if respO.StatusCode != http.StatusOK {
		t.Fatalf("oracle query = %d: %s", respO.StatusCode, outO)
	}
	var oracle struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(outO, &oracle); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rollup, oracle) {
		t.Fatalf("oracle answer differs: %v vs %v", rollup, oracle)
	}
	// A dice over HTTP.
	diceBody := `{"fact":"fact_table_revenue","group_by":["p_brand"],` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}],` +
		`"dice":{"func":"COUNT","thresholds":{"p_brand":2}}}`
	respD, outD := postJSON(t, ts.URL+"/api/olap", diceBody)
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("dice query = %d: %s", respD.StatusCode, outD)
	}
	// Malformed dice → 422.
	badDice := `{"fact":"fact_table_revenue","group_by":["p_brand"],` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}],` +
		`"dice":{"func":"MEDIAN","thresholds":{"p_brand":2}}}`
	respB, _ := postJSON(t, ts.URL+"/api/olap", badDice)
	if respB.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad dice = %d, want 422", respB.StatusCode)
	}
}

// olapStats fetches GET /api/olap/stats.
func olapStats(t *testing.T, url string) olapStatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/api/olap/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out olapStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	return out
}

// TestOLAPStaleAggregateNeverServed changes the SOURCE data between
// two warehouse loads, so unlike the deterministic-reload stress test
// the pre-run and post-run answers genuinely differ — a stale
// materialized aggregate (or a stale dimension build side) would
// reproduce the OLD answer and is caught by content, not just by the
// race detector.
func TestOLAPStaleAggregateNeverServed(t *testing.T) {
	// Result cache disabled so every request exercises the aggregate
	// path rather than the LRU.
	ts, _, p := stressServer(t, Options{OLAPCacheSize: -1}, 8)

	// Warm the query log, materialize, and verify the next request is
	// served from an aggregate (visible on the admin surface).
	resp, before := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up query = %d: %s", resp.StatusCode, before)
	}
	oe, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MatAgg().Refresh(oe); err != nil {
		t.Fatal(err)
	}
	resp, served := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("served query = %d: %s", resp.StatusCode, served)
	}
	if !bytes.Equal(before, served) {
		t.Fatalf("aggregate-served answer differs from computed answer:\n%s\n%s", before, served)
	}
	st := olapStats(t, ts.URL)
	if st.MatAgg == nil || st.MatAgg.Hits == 0 || st.MatAgg.Materialized == 0 {
		t.Fatalf("query was not served from a materialized aggregate: %+v", st.MatAgg)
	}

	// Mutate the source: one more lineitem for the SPAIN supplier
	// (supplier 0 is always SPAIN; part 0 / order 0 / partsupp(0,0)
	// exist at every scale factor), with a price large enough that
	// SUM(revenue) must visibly change after the next load.
	li, ok := p.DB().Table("lineitem")
	if !ok {
		t.Fatal("lineitem source missing")
	}
	if err := li.Insert(storage.Row{
		expr.Int(0), expr.Int(0), expr.Int(0), expr.Int(99),
		expr.Float(1), expr.Float(5e6), expr.Float(0), expr.Float(0),
		expr.Str("N"), expr.Str("1995-06-17"),
	}); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts.URL+"/api/run", `{}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, body)
	}

	// The post-run answer must reflect the new data — whether it comes
	// from the base-fact fallback (refresh still running) or from a
	// re-materialized aggregate at the new version. Serving the old
	// bytes would mean a stale aggregate or build side survived.
	resp, after := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload query = %d: %s", resp.StatusCode, after)
	}
	if bytes.Equal(before, after) {
		t.Fatalf("post-reload answer identical to pre-reload answer: stale aggregate served\n%s", after)
	}
	resp, oracle := postJSON(t, ts.URL+"/api/olap", stressQuery[:len(stressQuery)-1]+`,"oracle":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle query = %d: %s", resp.StatusCode, oracle)
	}
	if !bytes.Equal(after, oracle) {
		t.Fatalf("post-reload answer diverges from the oracle:\nfast:   %s\noracle: %s", after, oracle)
	}

	// After an explicit refresh at the new version, aggregates serve
	// again — still the new answer.
	if _, err := p.MatAgg().Refresh(oe); err != nil {
		t.Fatal(err)
	}
	hitsBefore := olapStats(t, ts.URL).MatAgg.Hits
	resp, refreshed := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refreshed query = %d: %s", resp.StatusCode, refreshed)
	}
	if !bytes.Equal(refreshed, oracle) {
		t.Fatalf("refreshed aggregate answer diverges from the oracle:\n%s\n%s", refreshed, oracle)
	}
	if got := olapStats(t, ts.URL).MatAgg.Hits; got <= hitsBefore {
		t.Fatalf("refreshed aggregate was not served: hits %d → %d", hitsBefore, got)
	}
}
