package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"quarry/internal/core"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// stressServer builds a server over a deployed warehouse with a small
// query pool and cache, returning the platform too.
func stressServer(t *testing.T, opts Options) (*httptest.Server, *core.Platform) {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(2)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, 2, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(p, opts).Handler())
	t.Cleanup(ts.Close)
	return ts, p
}

func postJSON(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const stressQuery = `{"fact":"fact_table_revenue","group_by":["p_brand"],` +
	`"roll_up":{"Supplier":"Nation"},` +
	`"measures":[{"out":"total","func":"SUM","col":"revenue"},{"out":"n","func":"COUNT"}]}`

// TestOLAPUnderConcurrentReloads hammers POST /api/olap from N
// goroutines while POST /api/run reloads the warehouse concurrently.
// The generator is deterministic, so a reload rebuilds identical
// tables: every OLAP response must therefore equal the canonical
// answer — a response computed from a half-loaded (torn) fact or
// dimension table would differ. Run under -race this also checks the
// locking discipline of the whole serving path.
func TestOLAPUnderConcurrentReloads(t *testing.T) {
	ts, _ := stressServer(t, Options{OLAPConcurrency: 4, OLAPCacheSize: -1})

	resp, body := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canonical query = %d: %s", resp.StatusCode, body)
	}
	var canonical struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &canonical); err != nil {
		t.Fatal(err)
	}
	if len(canonical.Rows) == 0 {
		t.Fatal("canonical query returned no rows")
	}

	stop := make(chan struct{})
	loadErrs := make(chan string, 1)
	go func() {
		defer close(loadErrs)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := postJSON(t, ts.URL+"/api/run", `{}`)
			if resp.StatusCode != http.StatusOK {
				loadErrs <- string(body)
				return
			}
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, body := postJSON(t, ts.URL+"/api/olap", stressQuery)
				if resp.StatusCode != http.StatusOK {
					errs <- string(body)
					return
				}
				var got struct {
					Columns []string   `json:"columns"`
					Rows    [][]string `json:"rows"`
				}
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- err.Error()
					return
				}
				if !reflect.DeepEqual(got.Columns, canonical.Columns) || !reflect.DeepEqual(got.Rows, canonical.Rows) {
					errs <- "response diverged from canonical answer (torn snapshot?)"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if msg, ok := <-loadErrs; ok && msg != "" {
		t.Fatalf("concurrent /api/run failed: %s", msg)
	}
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestOLAPCacheInvalidation: repeated queries hit the LRU cache, a
// reload invalidates it, and the post-reload answer is served fresh.
func TestOLAPCacheInvalidation(t *testing.T) {
	ts, _ := stressServer(t, Options{OLAPCacheSize: 16})
	resp1, body1 := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first query = %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("first query cache header = %q, want miss", got)
	}
	resp2, body2 := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if got := resp2.Header.Get("X-Quarry-Cache"); got != "hit" {
		t.Fatalf("second query cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached response differs from computed response")
	}
	// Reload: the cache must not serve the pre-reload entry.
	if resp, body := postJSON(t, ts.URL+"/api/run", `{}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, body)
	}
	resp3, body3 := postJSON(t, ts.URL+"/api/olap", stressQuery)
	if got := resp3.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("post-reload cache header = %q, want miss", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("post-reload answer differs (deterministic data should reproduce it)")
	}
}

// TestOLAPRollUpAndDiceOverHTTP exercises the new request fields
// end-to-end, including the oracle switch.
func TestOLAPRollUpAndDiceOverHTTP(t *testing.T) {
	ts, _ := stressServer(t, Options{})
	body := `{"fact":"fact_table_revenue",` +
		`"roll_up":{"Supplier":"Region"},` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}]}`
	resp, out := postJSON(t, ts.URL+"/api/olap", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("roll-up query = %d: %s", resp.StatusCode, out)
	}
	var rollup struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out, &rollup); err != nil {
		t.Fatal(err)
	}
	if len(rollup.Columns) == 0 || rollup.Columns[0] != "r_name" {
		t.Fatalf("roll-up columns = %v", rollup.Columns)
	}
	if len(rollup.Rows) != 1 || rollup.Rows[0][0] != "EUROPE" {
		t.Fatalf("roll-up rows = %v", rollup.Rows)
	}
	// The oracle path returns the same body.
	oracleBody := body[:len(body)-1] + `,"oracle":true}`
	respO, outO := postJSON(t, ts.URL+"/api/olap", oracleBody)
	if respO.StatusCode != http.StatusOK {
		t.Fatalf("oracle query = %d: %s", respO.StatusCode, outO)
	}
	var oracle struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(outO, &oracle); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rollup, oracle) {
		t.Fatalf("oracle answer differs: %v vs %v", rollup, oracle)
	}
	// A dice over HTTP.
	diceBody := `{"fact":"fact_table_revenue","group_by":["p_brand"],` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}],` +
		`"dice":{"func":"COUNT","thresholds":{"p_brand":2}}}`
	respD, outD := postJSON(t, ts.URL+"/api/olap", diceBody)
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("dice query = %d: %s", respD.StatusCode, outD)
	}
	// Malformed dice → 422.
	badDice := `{"fact":"fact_table_revenue","group_by":["p_brand"],` +
		`"measures":[{"out":"total","func":"SUM","col":"revenue"}],` +
		`"dice":{"func":"MEDIAN","thresholds":{"p_brand":2}}}`
	respB, _ := postJSON(t, ts.URL+"/api/olap", badDice)
	if respB.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad dice = %d, want 422", respB.StatusCode)
	}
}
