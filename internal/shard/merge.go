package shard

import (
	"errors"
	"fmt"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/xlm"
)

// ErrEpochSkew marks a scatter whose shards answered at different
// warehouse versions (or with mismatched topology): the partials
// describe different logical databases and must never be merged. The
// gather treats it as retryable — shards commit runs in lockstep, so
// a fresh scatter normally lands on one epoch.
var ErrEpochSkew = errors.New("shard: partial answers disagree on epoch or topology")

// Merge validates per-shard partial responses and merges them into
// the final cube answer: columns, finalised rows (sorted by the group
// columns, exactly like the single-node executors), and the common
// epoch. resps must be in shard-index order — resps[i].ShardIndex ==
// i — which also fixes the group first-seen order deterministically;
// the final sort makes that order invisible in the answer, but
// determinism everywhere keeps debugging sane.
//
// Correctness: each shard's partial states are the kernel's own
// pre-finalisation states over its partition; Absorb merges them with
// the kernel's own algebra (exact float expansions included), and
// Result + sort finalise once. The output is therefore byte-identical
// to a single node that folded every row — see the property suite in
// internal/olap and the e2e battery in internal/server.
func Merge(resps []*PartialResponse) (columns []string, rows [][]expr.Value, epoch uint64, err error) {
	if len(resps) == 0 {
		return nil, nil, 0, fmt.Errorf("shard: no partial answers to merge")
	}
	first := resps[0]
	if first.ShardCount != len(resps) {
		return nil, nil, 0, fmt.Errorf("%w: %d answers for a %d-shard topology", ErrEpochSkew, len(resps), first.ShardCount)
	}
	for i, r := range resps {
		if r == nil {
			return nil, nil, 0, fmt.Errorf("shard: missing partial answer for shard %d", i)
		}
		if r.ShardIndex != i || r.ShardCount != first.ShardCount {
			return nil, nil, 0, fmt.Errorf("%w: answer %d identifies as shard %d/%d, want %d/%d", ErrEpochSkew, i, r.ShardIndex, r.ShardCount, i, first.ShardCount)
		}
		if r.Epoch != first.Epoch {
			return nil, nil, 0, fmt.Errorf("%w: shard %d answered at epoch %d, shard 0 at %d", ErrEpochSkew, i, r.Epoch, first.Epoch)
		}
		if err := sameShape(first, r, i); err != nil {
			return nil, nil, 0, err
		}
	}
	// Merge aggregator: group keys are the first GroupCols positions of
	// the (virtual) partial rows; aggregate input positions are unused
	// on the absorb path, so 0 stands in.
	groupIdx := make([]int, first.GroupCols)
	for i := range groupIdx {
		groupIdx[i] = i
	}
	aggs := make([]xlm.AggSpec, len(first.Aggs))
	aggIdx := make([]int, len(first.Aggs))
	for i, a := range first.Aggs {
		aggs[i] = xlm.AggSpec{Func: a.Func, Out: a.Out}
	}
	agg, err := engine.NewHashAggregator(groupIdx, aggs, aggIdx)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("shard: building merge aggregator: %w", err)
	}
	for _, r := range resps {
		groups, err := r.DecodeGroups()
		if err != nil {
			return nil, nil, 0, err
		}
		if err := agg.Absorb(groups); err != nil {
			return nil, nil, 0, err
		}
	}
	rows = engine.SortRowsBy(agg.Result(), groupIdx)
	return first.Columns, rows, first.Epoch, nil
}

// sameShape checks a response declares the same result shape as the
// first one. A mismatch here means version-skewed designs, which the
// epoch check normally catches first — but shape is what the merge
// actually depends on, so it is verified independently.
func sameShape(a, b *PartialResponse, i int) error {
	if len(a.Columns) != len(b.Columns) || a.GroupCols != b.GroupCols || len(a.Aggs) != len(b.Aggs) {
		return fmt.Errorf("%w: shard %d answered a different result shape", ErrEpochSkew, i)
	}
	for k := range a.Columns {
		if a.Columns[k] != b.Columns[k] {
			return fmt.Errorf("%w: shard %d column %d is %q, shard 0 has %q", ErrEpochSkew, i, k, b.Columns[k], a.Columns[k])
		}
	}
	for k := range a.Aggs {
		if a.Aggs[k] != b.Aggs[k] {
			return fmt.Errorf("%w: shard %d aggregate %d is %+v, shard 0 has %+v", ErrEpochSkew, i, k, b.Aggs[k], a.Aggs[k])
		}
	}
	return nil
}
