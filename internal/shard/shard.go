// Package shard implements Quarry's write/data scale-out layer: a
// large fact table is hash-partitioned by join key across N quarryd
// shards, dimensions are replicated to every shard, and cube queries
// are answered by scatter-gather — each shard aggregates its own
// partition with the normal kernels and ships pre-finalisation
// partial aggregates (wire.go), which the router merges (merge.go)
// into an answer byte-identical to a single node holding all rows.
//
// The merge algebra is the classical distributive/algebraic
// decomposition: COUNT and int SUM merge by addition, MIN/MAX by
// comparison, AVG ships SUM+COUNT and divides once after the merge.
// Float SUM is the one aggregate that is not distributive under IEEE
// rounding, so it ships as an exact non-overlapping expansion
// (engine.FloatSum) and is rounded exactly once, after the merge —
// making the result a function of the row multiset alone, independent
// of how rows were partitioned. See docs/ARCHITECTURE.md ("Sharding").
//
// Epoch protocol: every partial answer carries the shard's warehouse
// version. Shards load deterministically (same designs, same sources,
// same partition function), so their versions advance in lockstep;
// the gather refuses to merge answers from different epochs
// (ErrEpochSkew) — a mid-scatter reload can delay a query, never
// corrupt it.
package shard

import (
	"fmt"

	"quarry/internal/expr"
	"quarry/internal/sqlgen"
)

// Spec identifies one shard of an N-way hash-partitioned warehouse.
// The zero value (Count 0) means "not sharded".
type Spec struct {
	Index int // this shard's 0-based index
	Count int // total number of shards
}

// Enabled reports whether the spec describes a shard at all.
func (s Spec) Enabled() bool { return s.Count > 0 }

// Validate checks the spec is a well-formed shard identity.
func (s Spec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("shard: count must be >= 1 (got %d)", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard: index %d out of range [0,%d)", s.Index, s.Count)
	}
	return nil
}

func (s Spec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// KeyColumn returns the partition-key column of a deployed table: the
// first declared foreign key. Tables without foreign keys are
// dimensions and are not partitioned ("").
//
// Using the first FK is arbitrary but deterministic: every shard
// derives its table definitions from the same unified design, so all
// shards — and the single-node oracle reasoning about them — agree on
// the key without any coordination.
func KeyColumn(def *sqlgen.TableDef) string {
	if len(def.ForeignKeys) == 0 {
		return ""
	}
	return def.ForeignKeys[0].Column
}

// PartitionKeys derives the partition key of every fact table in a
// deployed design (tables with no foreign keys — dimensions — are
// absent from the map).
func PartitionKeys(defs []sqlgen.TableDef) map[string]string {
	keys := make(map[string]string)
	for i := range defs {
		if k := KeyColumn(&defs[i]); k != "" {
			keys[defs[i].Name] = k
		}
	}
	return keys
}

// Owner returns the shard index owning a partition-key value:
// Hash(key) mod Count. expr.Value.Hash is stable across processes and
// hashes numerically-equal ints and floats identically, so ownership
// never depends on which node computes it. NULL keys hash like any
// other value and land deterministically on one shard.
func (s Spec) Owner(v expr.Value) int {
	return int(v.Hash() % uint64(s.Count))
}

// LoadFilter returns the engine load-filter hook
// (engine.Options.LoadFilter) for this shard: fact tables (those with
// an entry in keys, from PartitionKeys) keep only the rows this shard
// owns; every other table — the dimensions — loads in full on every
// shard. A nil receiver spec (Count 0) returns nil: no filtering.
func (s Spec) LoadFilter(keys map[string]string) func(table string, cols []string) (func(row []expr.Value) bool, error) {
	if !s.Enabled() {
		return nil
	}
	return func(table string, cols []string) (func(row []expr.Value) bool, error) {
		key := keys[table]
		if key == "" {
			return nil, nil // dimension: replicate everywhere
		}
		pos := -1
		for i, c := range cols {
			if c == key {
				pos = i
				break
			}
		}
		if pos == -1 {
			// Loading the full fact here would silently double-count
			// rows across the cluster; refuse instead.
			return nil, fmt.Errorf("shard: fact table %q lacks its partition key column %q", table, key)
		}
		want, cnt := s.Index, uint64(s.Count)
		return func(row []expr.Value) bool {
			return int(row[pos].Hash()%cnt) == want
		}, nil
	}
}
