package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/sqlgen"
	"quarry/internal/xlm"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{0, 1}, true},
		{Spec{2, 3}, true},
		{Spec{0, 0}, false},
		{Spec{-1, 2}, false},
		{Spec{2, 2}, false},
		{Spec{0, -1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v): got err=%v, want ok=%v", c.spec, err, c.ok)
		}
	}
	if (Spec{}).Enabled() {
		t.Error("zero spec must not be Enabled")
	}
	if !(Spec{Index: 1, Count: 2}).Enabled() {
		t.Error("1/2 must be Enabled")
	}
	if got := (Spec{Index: 1, Count: 4}).String(); got != "1/4" {
		t.Errorf("String = %q", got)
	}
}

// Owner must cover all shards, never go out of range, and treat
// numerically equal ints and floats identically (an ETL run may load a
// key as int where another types it float).
func TestOwnerDeterministicAndTypeStable(t *testing.T) {
	for count := 1; count <= 8; count++ {
		s := Spec{Index: 0, Count: count}
		hit := make([]bool, count)
		for i := int64(0); i < 1000; i++ {
			o := s.Owner(expr.Int(i))
			if o < 0 || o >= count {
				t.Fatalf("count=%d key=%d: owner %d out of range", count, i, o)
			}
			hit[o] = true
			if fo := s.Owner(expr.Float(float64(i))); fo != o {
				t.Fatalf("count=%d key=%d: int owner %d != float owner %d", count, i, o, fo)
			}
		}
		if count > 1 {
			for i, h := range hit {
				if !h {
					t.Errorf("count=%d: shard %d owns no key in 0..999", count, i)
				}
			}
		}
		// NULL keys are owned by exactly one deterministic shard.
		if a, b := s.Owner(expr.Null()), s.Owner(expr.Null()); a != b {
			t.Fatalf("NULL ownership not deterministic: %d vs %d", a, b)
		}
	}
}

func factDef() sqlgen.TableDef {
	return sqlgen.TableDef{
		Name: "fact_sales",
		Columns: []xlm.Field{
			{Name: "cust_id"}, {Name: "amount"},
		},
		ForeignKeys: []sqlgen.ForeignKey{
			{Column: "cust_id", RefTable: "dim_customer", RefColumn: "cust_id"},
			{Column: "part_id", RefTable: "dim_part", RefColumn: "part_id"},
		},
	}
}

func TestKeyColumnAndPartitionKeys(t *testing.T) {
	fact := factDef()
	dim := sqlgen.TableDef{Name: "dim_customer"}
	if got := KeyColumn(&fact); got != "cust_id" {
		t.Errorf("KeyColumn(fact) = %q, want first FK column", got)
	}
	if got := KeyColumn(&dim); got != "" {
		t.Errorf("KeyColumn(dim) = %q, want empty", got)
	}
	keys := PartitionKeys([]sqlgen.TableDef{fact, dim})
	if len(keys) != 1 || keys["fact_sales"] != "cust_id" {
		t.Errorf("PartitionKeys = %v", keys)
	}
}

func TestLoadFilter(t *testing.T) {
	keys := map[string]string{"fact_sales": "cust_id"}

	if lf := (Spec{}).LoadFilter(keys); lf != nil {
		t.Fatal("disabled spec must return a nil hook")
	}

	const count = 3
	// Dimensions pass through unfiltered on every shard.
	for idx := 0; idx < count; idx++ {
		lf := Spec{Index: idx, Count: count}.LoadFilter(keys)
		pred, err := lf("dim_customer", []string{"cust_id", "name"})
		if err != nil || pred != nil {
			t.Fatalf("shard %d: dimension must load unfiltered, got pred=%t err=%v", idx, pred != nil, err)
		}
	}

	// A fact whose layout lacks the key column must refuse to load.
	lf := Spec{Index: 0, Count: count}.LoadFilter(keys)
	if _, err := lf("fact_sales", []string{"amount", "qty"}); err == nil {
		t.Fatal("missing partition-key column must be an error, not a full load")
	}

	// Across all shards, every row is kept by exactly one.
	preds := make([]func([]expr.Value) bool, count)
	for idx := 0; idx < count; idx++ {
		p, err := Spec{Index: idx, Count: count}.LoadFilter(keys)("fact_sales", []string{"amount", "cust_id"})
		if err != nil || p == nil {
			t.Fatalf("shard %d: fact filter: pred=%t err=%v", idx, p != nil, err)
		}
		preds[idx] = p
	}
	for i := int64(0); i < 500; i++ {
		row := []expr.Value{expr.Float(float64(i) * 1.5), expr.Int(i % 97)}
		owners := 0
		for idx := 0; idx < count; idx++ {
			if preds[idx](row) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("row with key %d kept by %d shards, want exactly 1", i%97, owners)
		}
	}
}

func TestValueWireRoundTrip(t *testing.T) {
	vals := []expr.Value{
		expr.Null(),
		expr.Int(-42),
		expr.Float(3.5),
		expr.Float(math.Inf(-1)),
		expr.Float(math.Copysign(0, -1)),
		expr.Str("FRANCE"),
		expr.Bool(true),
		expr.Bool(false),
	}
	for _, v := range vals {
		w := EncodeValue(v)
		// Through JSON, like the real protocol.
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var w2 ValueWire
		if err := json.Unmarshal(b, &w2); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		got, err := w2.Decode()
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got.Kind() != v.Kind() {
			t.Fatalf("kind changed: %v -> %v", v.Kind(), got.Kind())
		}
		if v.Kind() == expr.KindFloat {
			f1, _ := v.AsFloat()
			f2, _ := got.AsFloat()
			if math.Float64bits(f1) != math.Float64bits(f2) {
				t.Fatalf("float bits changed: %x -> %x", math.Float64bits(f1), math.Float64bits(f2))
			}
		} else if got.String() != v.String() {
			t.Fatalf("value changed: %v -> %v", v, got)
		}
	}
	// NaN round-trips with its bit pattern intact (JSON float text
	// could never carry it at all).
	nan := EncodeValue(expr.Float(math.NaN()))
	back, err := nan.Decode()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := back.AsFloat()
	if !math.IsNaN(f) {
		t.Fatal("NaN did not survive the wire")
	}

	if _, err := (ValueWire{Kind: "decimal128"}).Decode(); err == nil {
		t.Fatal("unknown kind must be a decode error")
	}
}

// partialFromRows folds rows into an aggregator and exports/imports
// its states through the wire, returning what a gather would absorb.
func wireTrip(t *testing.T, resp *PartialResponse) *PartialResponse {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back PartialResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	return &back
}

func aggOver(t *testing.T, rows [][]expr.Value) *engine.HashAggregator {
	t.Helper()
	aggs := []xlm.AggSpec{
		{Out: "n", Func: "COUNT"},
		{Out: "total", Func: "SUM", Col: "amount"},
		{Out: "avg_amt", Func: "AVG", Col: "amount"},
		{Out: "units", Func: "SUM", Col: "qty"},
		{Out: "first", Func: "MIN", Col: "tag"},
		{Out: "last", Func: "MAX", Col: "tag"},
	}
	agg, err := engine.NewHashAggregator([]int{0}, aggs, []int{-1, 1, 1, 2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(rows); err != nil {
		t.Fatal(err)
	}
	return agg
}

func testAggSpecs() []xlm.AggSpec {
	return []xlm.AggSpec{
		{Out: "n", Func: "COUNT"},
		{Out: "total", Func: "SUM"},
		{Out: "avg_amt", Func: "AVG"},
		{Out: "units", Func: "SUM"},
		{Out: "first", Func: "MIN"},
		{Out: "last", Func: "MAX"},
	}
}

func testRows(n int) [][]expr.Value {
	rows := make([][]expr.Value, n)
	for i := 0; i < n; i++ {
		// Awkward floats on purpose: exactness must not depend on nice
		// values. Group key cycles through 4 groups incl. NULL (one
		// kind + NULL, like a real column).
		var g expr.Value
		switch i % 4 {
		case 0:
			g = expr.Str("alpha")
		case 1:
			g = expr.Str("beta")
		case 2:
			g = expr.Str("gamma")
		default:
			g = expr.Null()
		}
		rows[i] = []expr.Value{
			g,
			expr.Float(0.1*float64(i) + 1e15 - float64(i%3)*1e15),
			expr.Int(int64(i % 11)),
			expr.Str(fmt.Sprintf("t%03d", i*37%200)),
		}
	}
	return rows
}

// The core protocol property: partition rows any way at all, export
// each part's partials through JSON, merge — bytes match the
// single-fold answer.
func TestMergeByteIdentity(t *testing.T) {
	rows := testRows(400)
	columns := []string{"g", "n", "total", "avg_amt", "units", "first", "last"}

	oracle := engine.SortRowsBy(aggOver(t, rows).Result(), []int{0})

	for count := 1; count <= 5; count++ {
		parts := make([][][]expr.Value, count)
		for i, row := range rows {
			s := i % count // any deterministic partition works
			parts[s] = append(parts[s], row)
		}
		resps := make([]*PartialResponse, count)
		for s := 0; s < count; s++ {
			agg := aggOver(t, parts[s])
			resps[s] = wireTrip(t, EncodePartial(s, count, 42, columns, 1, testAggSpecs(), agg.Partials()))
		}
		gotCols, gotRows, epoch, err := Merge(resps)
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		if epoch != 42 {
			t.Fatalf("count=%d: epoch %d", count, epoch)
		}
		if strings.Join(gotCols, ",") != strings.Join(columns, ",") {
			t.Fatalf("count=%d: columns %v", count, gotCols)
		}
		if len(gotRows) != len(oracle) {
			t.Fatalf("count=%d: %d rows, oracle has %d", count, len(gotRows), len(oracle))
		}
		for r := range oracle {
			for c := range oracle[r] {
				w, g := oracle[r][c], gotRows[r][c]
				if w.Kind() != g.Kind() {
					t.Fatalf("count=%d row %d col %d: kind %v vs %v", count, r, c, g.Kind(), w.Kind())
				}
				if w.Kind() == expr.KindFloat {
					wf, _ := w.AsFloat()
					gf, _ := g.AsFloat()
					if math.Float64bits(wf) != math.Float64bits(gf) {
						t.Fatalf("count=%d row %d col %d: float bits %x vs %x", count, r, c, math.Float64bits(gf), math.Float64bits(wf))
					}
				} else if w.String() != g.String() {
					t.Fatalf("count=%d row %d col %d: %v vs %v", count, r, c, g, w)
				}
			}
		}
	}
}

// Global aggregate (no GROUP BY) over zero rows: every shard exports
// zero groups and the merge must inject the single zero-row exactly
// once — not once per shard, not zero times.
func TestMergeGlobalAggregateZeroRows(t *testing.T) {
	columns := []string{"n", "total"}
	aggs := []xlm.AggSpec{{Out: "n", Func: "COUNT"}, {Out: "total", Func: "SUM"}}
	resps := make([]*PartialResponse, 3)
	for s := 0; s < 3; s++ {
		agg, err := engine.NewHashAggregator(nil, aggs, []int{-1, 0})
		if err != nil {
			t.Fatal(err)
		}
		resps[s] = wireTrip(t, EncodePartial(s, 3, 7, columns, 0, aggs, agg.Partials()))
		if len(resps[s].Groups) != 0 {
			t.Fatalf("shard %d exported %d groups for zero rows", s, len(resps[s].Groups))
		}
	}
	_, rows, _, err := Merge(resps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("global aggregate over zero rows: %d rows, want 1", len(rows))
	}
	if rows[0][0].String() != "0" || !rows[0][1].IsNull() {
		t.Fatalf("zero-row result = %v, want [0 NULL]", rows[0])
	}
}

func validResps(t *testing.T, count int, epoch uint64) []*PartialResponse {
	t.Helper()
	rows := testRows(60)
	columns := []string{"g", "n", "total", "avg_amt", "units", "first", "last"}
	resps := make([]*PartialResponse, count)
	for s := 0; s < count; s++ {
		var part [][]expr.Value
		for i, row := range rows {
			if i%count == s {
				part = append(part, row)
			}
		}
		agg := aggOver(t, part)
		resps[s] = EncodePartial(s, count, epoch, columns, 1, testAggSpecs(), agg.Partials())
	}
	return resps
}

func TestMergeRejectsSkew(t *testing.T) {
	wantSkew := func(name string, resps []*PartialResponse) {
		t.Helper()
		_, _, _, err := Merge(resps)
		if err == nil {
			t.Fatalf("%s: merge accepted skewed answers", name)
		}
		if !errors.Is(err, ErrEpochSkew) {
			t.Fatalf("%s: error %v is not ErrEpochSkew", name, err)
		}
	}

	r := validResps(t, 3, 10)
	r[2].Epoch = 11
	wantSkew("epoch mismatch", r)

	r = validResps(t, 3, 10)
	wantSkew("missing shard", r[:2])

	r = validResps(t, 3, 10)
	r[1], r[2] = r[2], r[1]
	wantSkew("out-of-order indexes", r)

	r = validResps(t, 3, 10)
	r[1].ShardCount = 4
	wantSkew("count mismatch", r)

	r = validResps(t, 3, 10)
	r[1].Columns = append([]string{}, r[1].Columns...)
	r[1].Columns[0] = "renamed"
	wantSkew("column rename", r)

	r = validResps(t, 3, 10)
	r[1].Aggs[1].Func = "MIN"
	wantSkew("aggregate mismatch", r)

	if _, _, _, err := Merge(nil); err == nil {
		t.Fatal("empty merge must fail")
	}
	r = validResps(t, 3, 10)
	r[1] = nil
	if _, _, _, err := Merge(r); err == nil {
		t.Fatal("nil response must fail")
	}

	// And the happy path still merges.
	r = validResps(t, 3, 10)
	if _, _, _, err := Merge(r); err != nil {
		t.Fatalf("valid responses failed to merge: %v", err)
	}
}

// Malformed wire groups (arity lies) must be decode errors.
func TestDecodeGroupsValidatesArity(t *testing.T) {
	r := validResps(t, 1, 1)[0]
	r.Groups[0].Key = append(r.Groups[0].Key, ValueWire{Kind: "int"})
	if _, err := r.DecodeGroups(); err == nil {
		t.Fatal("extra key value must be a decode error")
	}
	r = validResps(t, 1, 1)[0]
	r.Groups[0].Measures = r.Groups[0].Measures[:2]
	if _, err := r.DecodeGroups(); err == nil {
		t.Fatal("missing measures must be a decode error")
	}
}
