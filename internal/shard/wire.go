package shard

import (
	"fmt"
	"math"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/xlm"
)

// Wire format of the partial-aggregate protocol: the JSON body a
// shard returns from POST /api/olap/partial and the router feeds into
// Merge. Every float64 travels as its IEEE-754 bit pattern in a
// uint64 — encoding/json round-trips integers up to 2^64 exactly,
// while float JSON text would mangle NaN/Inf outright and any decimal
// rendering shorter than bit-exact would break the byte-identity
// contract the whole protocol exists for.

// ValueWire is one expr.Value on the wire. Kind uses the expr kind
// names ("null", "int", "float", "string", "bool").
type ValueWire struct {
	Kind string `json:"k"`
	Int  int64  `json:"i,omitempty"`
	Bits uint64 `json:"f,omitempty"` // math.Float64bits for Kind "float"
	Str  string `json:"s,omitempty"`
	Bool bool   `json:"b,omitempty"`
}

// EncodeValue converts a value to its wire form.
func EncodeValue(v expr.Value) ValueWire {
	w := ValueWire{Kind: v.Kind().String()}
	switch v.Kind() {
	case expr.KindInt:
		w.Int = v.AsInt()
	case expr.KindFloat:
		f, _ := v.AsFloat()
		w.Bits = math.Float64bits(f)
	case expr.KindString:
		w.Str = v.AsString()
	case expr.KindBool:
		w.Bool = v.AsBool()
	}
	return w
}

// Decode converts a wire value back. Unknown kinds are an error, not
// a NULL: a corrupt or version-skewed peer must fail the query, never
// feed wrong values into a merge.
func (w ValueWire) Decode() (expr.Value, error) {
	switch w.Kind {
	case "null", "":
		return expr.Null(), nil
	case "int":
		return expr.Int(w.Int), nil
	case "float":
		return expr.Float(math.Float64frombits(w.Bits)), nil
	case "string":
		return expr.Str(w.Str), nil
	case "bool":
		return expr.Bool(w.Bool), nil
	default:
		return expr.Value{}, fmt.Errorf("shard: unknown value kind %q on the wire", w.Kind)
	}
}

// MeasureWire is one aggregate's mergeable state for one group
// (engine.MeasurePartial on the wire).
type MeasureWire struct {
	Count    int64 `json:"count"`
	IntSum   int64 `json:"int_sum,omitempty"`
	SumIsInt bool  `json:"sum_is_int"`
	// Float-sum expansion, each part as Float64bits.
	SumParts      []uint64   `json:"sum_parts,omitempty"`
	SumSpecial    uint64     `json:"sum_special,omitempty"`
	SumHasSpecial bool       `json:"sum_has_special,omitempty"`
	Min           *ValueWire `json:"min,omitempty"`
	Max           *ValueWire `json:"max,omitempty"`
}

// GroupWire is one group's partial state: key values + measures.
type GroupWire struct {
	Key      []ValueWire   `json:"key"`
	Measures []MeasureWire `json:"measures"`
}

// AggWire echoes one declared aggregate so the gather side can build
// its merge aggregator without knowing the schema.
type AggWire struct {
	Func string `json:"func"`
	Out  string `json:"out"`
}

// PartialResponse is the full body of a shard's partial answer.
type PartialResponse struct {
	// Shard identity + epoch, validated by Merge: indexes must cover
	// exactly 0..ShardCount-1 and every epoch must agree.
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
	Epoch      uint64 `json:"epoch"`
	// Result shape: output column names (group columns first), how
	// many of them are group columns, and the declared aggregates.
	Columns   []string    `json:"columns"`
	GroupCols int         `json:"group_cols"`
	Aggs      []AggWire   `json:"aggs"`
	Groups    []GroupWire `json:"groups"`
}

// EncodePartial builds the wire body from a shard-local partial
// aggregation (the olap layer's pre-merge states).
func EncodePartial(index, count int, epoch uint64, columns []string, groupCols int, aggs []xlm.AggSpec, groups []engine.AggPartial) *PartialResponse {
	resp := &PartialResponse{
		ShardIndex: index,
		ShardCount: count,
		Epoch:      epoch,
		Columns:    append([]string(nil), columns...),
		GroupCols:  groupCols,
		Aggs:       make([]AggWire, len(aggs)),
		Groups:     make([]GroupWire, len(groups)),
	}
	for i, a := range aggs {
		resp.Aggs[i] = AggWire{Func: a.Func, Out: a.Out}
	}
	for gi := range groups {
		g := &groups[gi]
		gw := GroupWire{
			Key:      make([]ValueWire, len(g.Group)),
			Measures: make([]MeasureWire, len(g.Measures)),
		}
		for i, v := range g.Group {
			gw.Key[i] = EncodeValue(v)
		}
		for i := range g.Measures {
			m := &g.Measures[i]
			mw := MeasureWire{
				Count:         m.Count,
				IntSum:        m.IntSum,
				SumIsInt:      m.SumIsInt,
				SumHasSpecial: m.SumHasSpecial,
			}
			if len(m.SumParts) > 0 {
				mw.SumParts = make([]uint64, len(m.SumParts))
				for k, p := range m.SumParts {
					mw.SumParts[k] = math.Float64bits(p)
				}
			}
			if m.SumHasSpecial {
				mw.SumSpecial = math.Float64bits(m.SumSpecial)
			}
			if !m.Min.IsNull() {
				w := EncodeValue(m.Min)
				mw.Min = &w
			}
			if !m.Max.IsNull() {
				w := EncodeValue(m.Max)
				mw.Max = &w
			}
			gw.Measures[i] = mw
		}
		resp.Groups[gi] = gw
	}
	return resp
}

// DecodeGroups converts the wire groups back into engine partials.
func (r *PartialResponse) DecodeGroups() ([]engine.AggPartial, error) {
	out := make([]engine.AggPartial, len(r.Groups))
	for gi := range r.Groups {
		gw := &r.Groups[gi]
		if len(gw.Key) != r.GroupCols {
			return nil, fmt.Errorf("shard: group %d has %d key values, response declares %d group columns", gi, len(gw.Key), r.GroupCols)
		}
		if len(gw.Measures) != len(r.Aggs) {
			return nil, fmt.Errorf("shard: group %d has %d measures, response declares %d aggregates", gi, len(gw.Measures), len(r.Aggs))
		}
		p := engine.AggPartial{
			Group:    make([]expr.Value, len(gw.Key)),
			Measures: make([]engine.MeasurePartial, len(gw.Measures)),
		}
		for i, vw := range gw.Key {
			v, err := vw.Decode()
			if err != nil {
				return nil, err
			}
			p.Group[i] = v
		}
		for i := range gw.Measures {
			mw := &gw.Measures[i]
			m := engine.MeasurePartial{
				Count:         mw.Count,
				IntSum:        mw.IntSum,
				SumIsInt:      mw.SumIsInt,
				SumHasSpecial: mw.SumHasSpecial,
				Min:           expr.Null(),
				Max:           expr.Null(),
			}
			if len(mw.SumParts) > 0 {
				m.SumParts = make([]float64, len(mw.SumParts))
				for k, b := range mw.SumParts {
					m.SumParts[k] = math.Float64frombits(b)
				}
			}
			if mw.SumHasSpecial {
				m.SumSpecial = math.Float64frombits(mw.SumSpecial)
			}
			if mw.Min != nil {
				v, err := mw.Min.Decode()
				if err != nil {
					return nil, err
				}
				m.Min = v
			}
			if mw.Max != nil {
				v, err := mw.Max.Decode()
				if err != nil {
					return nil, err
				}
				m.Max = v
			}
			p.Measures[i] = m
		}
		out[gi] = p
	}
	return out, nil
}
