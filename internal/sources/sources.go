// Package sources implements Quarry's data-source catalog: the
// physical schemas (datastores, relations, attributes, keys) and basic
// statistics of the systems a data warehouse is populated from. The
// Requirements Interpreter resolves source schema mappings against
// this catalog when synthesising ETL flows, and the ETL cost model
// draws cardinalities and distinct-value counts from it.
package sources

import (
	"fmt"
	"sort"
)

// Attribute is a typed column of a relation.
type Attribute struct {
	Name string
	Type string // "int", "float", "string", "bool"
}

// ForeignKey declares that Columns reference RefColumns of
// RefRelation (same datastore).
type ForeignKey struct {
	Columns     []string
	RefRelation string
	RefColumns  []string
}

// Stats carries optimiser statistics for a relation.
type Stats struct {
	// Rows is the (estimated) cardinality.
	Rows int64
	// Distinct maps column name → number of distinct values; absent
	// columns default to Rows (treated as unique).
	Distinct map[string]int64
}

// Relation is a table of a datastore.
type Relation struct {
	Name        string
	Attributes  []Attribute
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	Stats       Stats

	byName map[string]int
}

// Attribute looks a column up by name.
func (r *Relation) Attribute(name string) (Attribute, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Attribute{}, false
	}
	return r.Attributes[i], true
}

// HasAttribute reports whether the relation has the named column.
func (r *Relation) HasAttribute(name string) bool {
	_, ok := r.byName[name]
	return ok
}

// AttributeNames returns column names in declaration order.
func (r *Relation) AttributeNames() []string {
	out := make([]string, len(r.Attributes))
	for i, a := range r.Attributes {
		out[i] = a.Name
	}
	return out
}

// DistinctValues estimates the number of distinct values in a column:
// the recorded statistic, or the row count when unrecorded.
func (r *Relation) DistinctValues(col string) int64 {
	if d, ok := r.Stats.Distinct[col]; ok && d > 0 {
		return d
	}
	if r.Stats.Rows > 0 {
		return r.Stats.Rows
	}
	return 1
}

// DataStore is a named collection of relations (one source system).
type DataStore struct {
	Name string
	// Kind describes the platform ("relational", "csv", ...); purely
	// informational for the deployers.
	Kind string

	relations map[string]*Relation
	order     []string
}

// Relations returns the store's relations in insertion order.
func (d *DataStore) Relations() []*Relation {
	out := make([]*Relation, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.relations[n])
	}
	return out
}

// Relation looks a relation up by name.
func (d *DataStore) Relation(name string) (*Relation, bool) {
	r, ok := d.relations[name]
	return r, ok
}

// Catalog is the root of the source metadata.
type Catalog struct {
	stores map[string]*DataStore
	order  []string
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{stores: map[string]*DataStore{}}
}

// AddStore registers a datastore.
func (c *Catalog) AddStore(name, kind string) (*DataStore, error) {
	if name == "" {
		return nil, fmt.Errorf("sources: empty datastore name")
	}
	if _, dup := c.stores[name]; dup {
		return nil, fmt.Errorf("sources: duplicate datastore %q", name)
	}
	d := &DataStore{Name: name, Kind: kind, relations: map[string]*Relation{}}
	c.stores[name] = d
	c.order = append(c.order, name)
	return d, nil
}

// Store looks a datastore up by name.
func (c *Catalog) Store(name string) (*DataStore, bool) {
	d, ok := c.stores[name]
	return d, ok
}

// Stores returns all datastores in insertion order.
func (c *Catalog) Stores() []*DataStore {
	out := make([]*DataStore, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.stores[n])
	}
	return out
}

// AddRelation registers a relation in a datastore. The relation's
// internal indexes are built here; callers hand over ownership.
func (c *Catalog) AddRelation(store string, r *Relation) error {
	d, ok := c.stores[store]
	if !ok {
		return fmt.Errorf("sources: unknown datastore %q", store)
	}
	if r.Name == "" {
		return fmt.Errorf("sources: empty relation name in datastore %q", store)
	}
	if _, dup := d.relations[r.Name]; dup {
		return fmt.Errorf("sources: duplicate relation %s.%s", store, r.Name)
	}
	r.byName = map[string]int{}
	for i, a := range r.Attributes {
		if _, dup := r.byName[a.Name]; dup {
			return fmt.Errorf("sources: duplicate attribute %s.%s.%s", store, r.Name, a.Name)
		}
		switch a.Type {
		case "int", "float", "string", "bool":
		default:
			return fmt.Errorf("sources: attribute %s.%s.%s has unknown type %q", store, r.Name, a.Name, a.Type)
		}
		r.byName[a.Name] = i
	}
	for _, k := range r.PrimaryKey {
		if !r.HasAttribute(k) {
			return fmt.Errorf("sources: primary key column %q missing in %s.%s", k, store, r.Name)
		}
	}
	d.relations[r.Name] = r
	d.order = append(d.order, r.Name)
	return nil
}

// Validate re-checks referential integrity, including foreign keys
// (which may be declared before their target relation exists).
func (c *Catalog) Validate() error {
	for _, d := range c.Stores() {
		for _, r := range d.Relations() {
			for _, fk := range r.ForeignKeys {
				target, ok := d.relations[fk.RefRelation]
				if !ok {
					return fmt.Errorf("sources: %s.%s references unknown relation %q", d.Name, r.Name, fk.RefRelation)
				}
				if len(fk.Columns) != len(fk.RefColumns) || len(fk.Columns) == 0 {
					return fmt.Errorf("sources: %s.%s has malformed foreign key to %s", d.Name, r.Name, fk.RefRelation)
				}
				for i := range fk.Columns {
					a, ok := r.Attribute(fk.Columns[i])
					if !ok {
						return fmt.Errorf("sources: %s.%s foreign key column %q missing", d.Name, r.Name, fk.Columns[i])
					}
					b, ok := target.Attribute(fk.RefColumns[i])
					if !ok {
						return fmt.Errorf("sources: %s.%s referenced column %s.%q missing", d.Name, r.Name, fk.RefRelation, fk.RefColumns[i])
					}
					if a.Type != b.Type {
						return fmt.Errorf("sources: %s.%s foreign key %q type %s does not match %s.%s type %s",
							d.Name, r.Name, fk.Columns[i], a.Type, fk.RefRelation, fk.RefColumns[i], b.Type)
					}
				}
			}
		}
	}
	return nil
}

// Summary lists "store.relation(rows)" descriptors, sorted; handy in
// logs and the REST introspection endpoint.
func (c *Catalog) Summary() []string {
	var out []string
	for _, d := range c.Stores() {
		for _, r := range d.Relations() {
			out = append(out, fmt.Sprintf("%s.%s(%d)", d.Name, r.Name, r.Stats.Rows))
		}
	}
	sort.Strings(out)
	return out
}
