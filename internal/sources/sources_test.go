package sources

import (
	"strings"
	"testing"
)

func demoCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	if _, err := c.AddStore("tpch", "relational"); err != nil {
		t.Fatal(err)
	}
	err := c.AddRelation("tpch", &Relation{
		Name: "nation",
		Attributes: []Attribute{
			{Name: "n_nationkey", Type: "int"},
			{Name: "n_name", Type: "string"},
			{Name: "n_regionkey", Type: "int"},
		},
		PrimaryKey: []string{"n_nationkey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"n_regionkey"}, RefRelation: "region", RefColumns: []string{"r_regionkey"}},
		},
		Stats: Stats{Rows: 25, Distinct: map[string]int64{"n_name": 25, "n_regionkey": 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.AddRelation("tpch", &Relation{
		Name: "region",
		Attributes: []Attribute{
			{Name: "r_regionkey", Type: "int"},
			{Name: "r_name", Type: "string"},
		},
		PrimaryKey: []string{"r_regionkey"},
		Stats:      Stats{Rows: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := demoCatalog(t)
	d, ok := c.Store("tpch")
	if !ok {
		t.Fatal("store missing")
	}
	if len(d.Relations()) != 2 {
		t.Fatalf("relations = %d", len(d.Relations()))
	}
	r, ok := d.Relation("nation")
	if !ok {
		t.Fatal("nation missing")
	}
	a, ok := r.Attribute("n_name")
	if !ok || a.Type != "string" {
		t.Errorf("n_name = %+v, %v", a, ok)
	}
	if !r.HasAttribute("n_regionkey") || r.HasAttribute("bogus") {
		t.Error("HasAttribute wrong")
	}
	names := r.AttributeNames()
	if len(names) != 3 || names[0] != "n_nationkey" {
		t.Errorf("AttributeNames = %v", names)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDistinctValues(t *testing.T) {
	c := demoCatalog(t)
	d, _ := c.Store("tpch")
	r, _ := d.Relation("nation")
	if got := r.DistinctValues("n_name"); got != 25 {
		t.Errorf("distinct n_name = %d", got)
	}
	if got := r.DistinctValues("n_regionkey"); got != 5 {
		t.Errorf("distinct n_regionkey = %d", got)
	}
	// Unrecorded column falls back to row count.
	if got := r.DistinctValues("n_nationkey"); got != 25 {
		t.Errorf("distinct n_nationkey = %d", got)
	}
	// Relation with no stats at all defaults to 1.
	empty := &Relation{Name: "x", Attributes: []Attribute{{Name: "a", Type: "int"}}}
	c.AddRelation("tpch", empty)
	if got := empty.DistinctValues("a"); got != 1 {
		t.Errorf("distinct on stat-less relation = %d", got)
	}
}

func TestCatalogErrors(t *testing.T) {
	c := NewCatalog()
	if _, err := c.AddStore("", ""); err == nil {
		t.Error("empty store name accepted")
	}
	c.AddStore("s", "relational")
	if _, err := c.AddStore("s", "relational"); err == nil {
		t.Error("duplicate store accepted")
	}
	if err := c.AddRelation("missing", &Relation{Name: "r"}); err == nil {
		t.Error("relation on unknown store accepted")
	}
	if err := c.AddRelation("s", &Relation{}); err == nil {
		t.Error("empty relation name accepted")
	}
	if err := c.AddRelation("s", &Relation{
		Name:       "r",
		Attributes: []Attribute{{Name: "a", Type: "int"}, {Name: "a", Type: "int"}},
	}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := c.AddRelation("s", &Relation{
		Name:       "r",
		Attributes: []Attribute{{Name: "a", Type: "blob"}},
	}); err == nil {
		t.Error("bad type accepted")
	}
	if err := c.AddRelation("s", &Relation{
		Name:       "r",
		Attributes: []Attribute{{Name: "a", Type: "int"}},
		PrimaryKey: []string{"nope"},
	}); err == nil {
		t.Error("bad primary key accepted")
	}
	if err := c.AddRelation("s", &Relation{
		Name:       "r",
		Attributes: []Attribute{{Name: "a", Type: "int"}},
		PrimaryKey: []string{"a"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRelation("s", &Relation{Name: "r"}); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestValidateForeignKeys(t *testing.T) {
	mk := func(fk ForeignKey) *Catalog {
		c := NewCatalog()
		c.AddStore("s", "relational")
		c.AddRelation("s", &Relation{
			Name:        "child",
			Attributes:  []Attribute{{Name: "k", Type: "int"}, {Name: "fkc", Type: "int"}},
			ForeignKeys: []ForeignKey{fk},
		})
		c.AddRelation("s", &Relation{
			Name:       "parent",
			Attributes: []Attribute{{Name: "pk", Type: "int"}, {Name: "sk", Type: "string"}},
		})
		return c
	}
	ok := mk(ForeignKey{Columns: []string{"fkc"}, RefRelation: "parent", RefColumns: []string{"pk"}})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid FK rejected: %v", err)
	}
	bad := []ForeignKey{
		{Columns: []string{"fkc"}, RefRelation: "missing", RefColumns: []string{"pk"}},
		{Columns: []string{"fkc"}, RefRelation: "parent", RefColumns: []string{"pk", "sk"}},
		{Columns: []string{"nope"}, RefRelation: "parent", RefColumns: []string{"pk"}},
		{Columns: []string{"fkc"}, RefRelation: "parent", RefColumns: []string{"nope"}},
		{Columns: []string{"fkc"}, RefRelation: "parent", RefColumns: []string{"sk"}}, // type clash
		{Columns: nil, RefRelation: "parent", RefColumns: nil},
	}
	for i, fk := range bad {
		if err := mk(fk).Validate(); err == nil {
			t.Errorf("bad FK %d accepted", i)
		}
	}
}

func TestSummary(t *testing.T) {
	c := demoCatalog(t)
	s := c.Summary()
	if len(s) != 2 {
		t.Fatalf("summary = %v", s)
	}
	if !strings.Contains(s[0], "tpch.nation(25)") {
		t.Errorf("summary = %v", s)
	}
}
