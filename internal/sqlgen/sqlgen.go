// Package sqlgen implements the MD side of Quarry's Design Deployer
// (§2.4): translating a unified, platform-independent DW design into
// PostgreSQL-dialect DDL, exactly the artifact the paper's Figure 3
// shows (CREATE DATABASE / CREATE TABLE fact_table_revenue …), plus
// star-join OLAP query templates for the deployed schema.
//
// The deployed physical schema is derived from the unified xLM
// design's Loader operations (their inferred input schemas are the
// table layouts the ETL produces), enriched with the primary-key and
// foreign-key metadata the Requirements Interpreter records on each
// loader.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

// pgType maps logical types to PostgreSQL column types.
func pgType(t string) string {
	switch t {
	case "int":
		return "BIGINT"
	case "float":
		return "double precision"
	case "string":
		return "VARCHAR(128)"
	case "bool":
		return "BOOLEAN"
	default:
		return "TEXT"
	}
}

// quoteIdent quotes an SQL identifier.
func quoteIdent(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// TableDef is one deployable table derived from a loader.
type TableDef struct {
	Name        string
	Columns     []xlm.Field
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// ForeignKey references a column of another deployed table.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Tables derives the deployable table definitions from a validated
// design's loaders. Loaders into the same table must agree on their
// schema (the ETL integrator guarantees this by reusing the load
// branch).
func Tables(d *xlm.Design) ([]TableDef, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	byName := map[string]*TableDef{}
	var order []string
	for _, n := range d.Nodes() {
		if n.Type != xlm.OpLoader {
			continue
		}
		table := n.Param("table")
		inputs := d.Inputs(n.Name)
		if len(inputs) != 1 {
			return nil, fmt.Errorf("sqlgen: loader %q has %d inputs", n.Name, len(inputs))
		}
		cols := append([]xlm.Field(nil), inputs[0].Fields...)
		def := &TableDef{Name: table, Columns: cols}
		if keys := strings.TrimSpace(n.Param("keys")); keys != "" {
			for _, k := range strings.Split(keys, ",") {
				if k = strings.TrimSpace(k); k != "" {
					def.PrimaryKey = append(def.PrimaryKey, k)
				}
			}
		}
		if refs := strings.TrimSpace(n.Param("refs")); refs != "" {
			for _, r := range strings.Split(refs, ",") {
				r = strings.TrimSpace(r)
				if r == "" {
					continue
				}
				eq := strings.SplitN(r, "=", 2)
				if len(eq) != 2 {
					return nil, fmt.Errorf("sqlgen: loader %q has malformed ref %q", n.Name, r)
				}
				dot := strings.SplitN(eq[1], ".", 2)
				if len(dot) != 2 {
					return nil, fmt.Errorf("sqlgen: loader %q has malformed ref target %q", n.Name, eq[1])
				}
				def.ForeignKeys = append(def.ForeignKeys, ForeignKey{
					Column: strings.TrimSpace(eq[0]), RefTable: dot[0], RefColumn: dot[1],
				})
			}
		}
		if existing, dup := byName[table]; dup {
			if !sameColumns(existing.Columns, cols) {
				return nil, fmt.Errorf("sqlgen: loaders disagree on schema of table %q", table)
			}
			continue
		}
		byName[table] = def
		order = append(order, table)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("sqlgen: design %q has no loaders", d.Name)
	}
	// Dimensions before facts so FK targets exist (facts carry refs).
	sort.SliceStable(order, func(i, j int) bool {
		fi := len(byName[order[i]].ForeignKeys) > 0
		fj := len(byName[order[j]].ForeignKeys) > 0
		if fi != fj {
			return !fi
		}
		return order[i] < order[j]
	})
	out := make([]TableDef, 0, len(order))
	for _, t := range order {
		out = append(out, *byName[t])
	}
	return out, nil
}

func sameColumns(a, b []xlm.Field) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DDL renders the full PostgreSQL deployment script for a design:
// CREATE DATABASE plus one CREATE TABLE per deployed table, with
// primary and foreign keys.
func DDL(database string, d *xlm.Design) (string, error) {
	tables, err := Tables(d)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE DATABASE %s;\n\n", quoteIdent(database))
	for _, t := range tables {
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", quoteIdent(t.Name))
		for i, c := range t.Columns {
			fmt.Fprintf(&b, "  %s %s", quoteIdent(c.Name), pgType(c.Type))
			if i < len(t.Columns)-1 || len(t.PrimaryKey) > 0 || len(t.ForeignKeys) > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		if len(t.PrimaryKey) > 0 {
			cols := make([]string, len(t.PrimaryKey))
			for i, k := range t.PrimaryKey {
				cols[i] = quoteIdent(k)
			}
			fmt.Fprintf(&b, "  PRIMARY KEY (%s)", strings.Join(cols, ", "))
			if len(t.ForeignKeys) > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		for i, fk := range t.ForeignKeys {
			fmt.Fprintf(&b, "  FOREIGN KEY (%s) REFERENCES %s (%s)",
				quoteIdent(fk.Column), quoteIdent(fk.RefTable), quoteIdent(fk.RefColumn))
			if i < len(t.ForeignKeys)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(");\n\n")
	}
	return b.String(), nil
}

// StarQuery renders a sample OLAP star-join query for a fact of the
// MD schema against the deployed tables: the kind of query the
// deployed DW answers, used in documentation and smoke tests.
func StarQuery(md *xmd.Schema, etl *xlm.Design, factTable string) (string, error) {
	tables, err := Tables(etl)
	if err != nil {
		return "", err
	}
	var fact *TableDef
	for i := range tables {
		if tables[i].Name == factTable {
			fact = &tables[i]
		}
	}
	if fact == nil {
		return "", fmt.Errorf("sqlgen: fact table %q not deployed", factTable)
	}
	if len(fact.ForeignKeys) == 0 {
		return "", fmt.Errorf("sqlgen: table %q has no dimension references", factTable)
	}
	var selects, joins, groups []string
	seenDim := map[string]bool{}
	for _, fk := range fact.ForeignKeys {
		if !seenDim[fk.RefTable] {
			seenDim[fk.RefTable] = true
			joins = append(joins, fmt.Sprintf("JOIN %s ON %s.%s = %s.%s",
				quoteIdent(fk.RefTable),
				quoteIdent(factTable), quoteIdent(fk.Column),
				quoteIdent(fk.RefTable), quoteIdent(fk.RefColumn)))
			// First non-key column of the dimension is the natural
			// label to group by.
			for _, t := range tables {
				if t.Name != fk.RefTable {
					continue
				}
				for _, c := range t.Columns {
					isKey := false
					for _, k := range t.PrimaryKey {
						if c.Name == k {
							isKey = true
						}
					}
					if !isKey && c.Type == "string" {
						q := quoteIdent(fk.RefTable) + "." + quoteIdent(c.Name)
						selects = append(selects, q)
						groups = append(groups, q)
						break
					}
				}
			}
		}
	}
	// Aggregate every measure column (non-PK columns of the fact).
	for _, c := range fact.Columns {
		isKey := false
		for _, k := range fact.PrimaryKey {
			if c.Name == k {
				isKey = true
			}
		}
		if !isKey && (c.Type == "float" || c.Type == "int") {
			selects = append(selects, fmt.Sprintf("SUM(%s.%s) AS %s",
				quoteIdent(factTable), quoteIdent(c.Name), quoteIdent(c.Name+"_total")))
		}
	}
	if len(groups) == 0 {
		return "", fmt.Errorf("sqlgen: no groupable dimension labels for %q", factTable)
	}
	return fmt.Sprintf("SELECT %s\nFROM %s\n%s\nGROUP BY %s\nORDER BY %s;",
		strings.Join(selects, ", "),
		quoteIdent(factTable),
		strings.Join(joins, "\n"),
		strings.Join(groups, ", "),
		strings.Join(groups, ", ")), nil
}
