package sqlgen

import (
	"strings"
	"testing"

	"quarry/internal/interpreter"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

func revenueDesign(t *testing.T) (*xmd.Schema, *xlm.Design) {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	return pd.MD, pd.ETL
}

func TestTables(t *testing.T) {
	_, etl := revenueDesign(t)
	tables, err := Tables(etl)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableDef{}
	for _, tb := range tables {
		byName[tb.Name] = tb
	}
	fact, ok := byName["fact_table_revenue"]
	if !ok {
		t.Fatalf("fact table missing: %v", byName)
	}
	if strings.Join(fact.PrimaryKey, ",") != "p_partkey,s_suppkey" {
		t.Errorf("fact PK = %v", fact.PrimaryKey)
	}
	if len(fact.ForeignKeys) != 2 {
		t.Errorf("fact FKs = %v", fact.ForeignKeys)
	}
	dim, ok := byName["dim_supplier"]
	if !ok {
		t.Fatal("dim_supplier missing")
	}
	if strings.Join(dim.PrimaryKey, ",") != "s_suppkey" {
		t.Errorf("dim PK = %v", dim.PrimaryKey)
	}
	// Dimensions sort before facts (FK targets exist first).
	if tables[len(tables)-1].Name != "fact_table_revenue" {
		t.Errorf("fact table not last: %v", tables[len(tables)-1].Name)
	}
}

func TestDDLShape(t *testing.T) {
	_, etl := revenueDesign(t)
	ddl, err := DDL("demo", etl)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's artifact shape.
	for _, want := range []string{
		`CREATE DATABASE "demo";`,
		`CREATE TABLE "fact_table_revenue"`,
		`"revenue" double precision`,
		`PRIMARY KEY ("p_partkey", "s_suppkey")`,
		`FOREIGN KEY ("p_partkey") REFERENCES "dim_part" ("p_partkey")`,
		`FOREIGN KEY ("s_suppkey") REFERENCES "dim_supplier" ("s_suppkey")`,
		`CREATE TABLE "dim_supplier"`,
		`"n_name" VARCHAR(128)`,
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q\n%s", want, ddl)
		}
	}
	// Dimension tables are created before the fact table.
	if strings.Index(ddl, `CREATE TABLE "dim_part"`) > strings.Index(ddl, `CREATE TABLE "fact_table_revenue"`) {
		t.Error("fact table created before its dimensions")
	}
}

func TestStarQuery(t *testing.T) {
	md, etl := revenueDesign(t)
	q, err := StarQuery(md, etl, "fact_table_revenue")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`FROM "fact_table_revenue"`,
		`JOIN "dim_part" ON "fact_table_revenue"."p_partkey" = "dim_part"."p_partkey"`,
		`JOIN "dim_supplier"`,
		`SUM("fact_table_revenue"."revenue")`,
		"GROUP BY",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("query missing %q\n%s", want, q)
		}
	}
	if _, err := StarQuery(md, etl, "ghost"); err == nil {
		t.Error("unknown fact table accepted")
	}
	if _, err := StarQuery(md, etl, "dim_part"); err == nil {
		t.Error("dimension table accepted as fact")
	}
}

func TestTablesErrors(t *testing.T) {
	d := xlm.NewDesign("empty")
	if _, err := Tables(d); err == nil {
		t.Error("empty design accepted")
	}
	// Conflicting loader schemas into the same table.
	d2 := xlm.NewDesign("conflict")
	d2.AddNode(&xlm.Node{Name: "A", Type: xlm.OpDatastore, Fields: []xlm.Field{{Name: "a", Type: "int"}}, Params: map[string]string{"table": "src_a"}})
	d2.AddNode(&xlm.Node{Name: "B", Type: xlm.OpDatastore, Fields: []xlm.Field{{Name: "b", Type: "string"}}, Params: map[string]string{"table": "src_b"}})
	d2.AddNode(&xlm.Node{Name: "L1", Type: xlm.OpLoader, Params: map[string]string{"table": "t"}})
	d2.AddNode(&xlm.Node{Name: "L2", Type: xlm.OpLoader, Params: map[string]string{"table": "t"}})
	d2.AddEdge("A", "L1")
	d2.AddEdge("B", "L2")
	if _, err := Tables(d2); err == nil {
		t.Error("conflicting loader schemas accepted")
	}
}

func TestPgTypes(t *testing.T) {
	for in, want := range map[string]string{
		"int": "BIGINT", "float": "double precision", "string": "VARCHAR(128)",
		"bool": "BOOLEAN", "mystery": "TEXT",
	} {
		if got := pgType(in); got != want {
			t.Errorf("pgType(%s) = %s", in, got)
		}
	}
	if quoteIdent(`we"ird`) != `"we""ird"` {
		t.Errorf("quoteIdent = %s", quoteIdent(`we"ird`))
	}
}
