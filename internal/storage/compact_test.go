package storage

// Compaction suite: the commit-point segment merge must bound
// per-table segment counts, preserve content bit-exactly at the same
// version, leave pre-compaction snapshots readable, and — under crash
// injection — recover the pre-compaction catalog with the half-written
// merge collected as orphans.

import (
	"errors"
	"reflect"
	"testing"

	"quarry/internal/expr"
)

// appendMixed commits n rows onto the live table via an append delta.
func appendMixed(t *testing.T, db *DB, base, n int) {
	t.Helper()
	live, ok := db.Table("t")
	if !ok {
		t.Fatal("table t missing")
	}
	delta, err := NewStagingTable("t", mixedCols)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := delta.Insert(mixedRow(base + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CommitRun(nil, []AppendDelta{{Target: live, Delta: delta}}); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCompactionBoundsSegments: with QUARRY_COMPACT_SEGMENTS=2,
// repeated append commits must never leave more than 2 segments, and
// the compacted table stays byte-identical to the append history.
func TestAutoCompactionBoundsSegments(t *testing.T) {
	t.Setenv("QUARRY_COMPACT_SEGMENTS", "2")
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, err := db.CreateTable("t", mixedCols)
	if err != nil {
		t.Fatal(err)
	}
	fillMixed(t, tbl, 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var want []Row
	for i := 0; i < 100; i++ {
		want = append(want, mixedRow(i))
	}
	for round := 0; round < 6; round++ {
		base := 1000 * (round + 1)
		appendMixed(t, db, base, 50)
		for i := 0; i < 50; i++ {
			want = append(want, mixedRow(base+i))
		}
		st := db.DiskStats()["t"]
		if st.Segments > 2 {
			t.Fatalf("round %d: %d segments on disk, threshold is 2", round, st.Segments)
		}
	}
	live, _ := db.Table("t")
	if !reflect.DeepEqual(live.Rows(), want) {
		t.Fatal("compacted table content diverged from append history")
	}
	re := openDisk(t, dir)
	rt, _ := re.Table("t")
	if !reflect.DeepEqual(rt.Rows(), want) {
		t.Fatal("reopened compacted table content diverged")
	}
	if got := countSegs(t, dir); got > 2 {
		t.Fatalf("%d segment files on disk after compaction, want ≤ 2", got)
	}
}

// TestExplicitCompact: DB.Compact folds every table to one segment at
// the SAME version (content is unchanged — caches keyed on version
// must stay valid), and a snapshot taken before the compaction keeps
// reading its old segments.
func TestExplicitCompact(t *testing.T) {
	t.Setenv("QUARRY_COMPACT_SEGMENTS", "0") // no auto-compaction
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, err := db.CreateTable("t", mixedCols)
	if err != nil {
		t.Fatal(err)
	}
	fillMixed(t, tbl, 200)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		appendMixed(t, db, 10000*(round+1), 80)
	}
	if st := db.DiskStats()["t"]; st.Segments != 5 {
		t.Fatalf("seeded %d segments, want 5", st.Segments)
	}
	live, _ := db.Table("t")
	want := live.Rows()
	v := db.Version()

	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Version() != v {
		t.Fatalf("Compact bumped version %d → %d; content did not change", v, db.Version())
	}
	if st := db.DiskStats()["t"]; st.Segments != 1 {
		t.Fatalf("%d segments after Compact, want 1", st.Segments)
	}
	if !reflect.DeepEqual(live.Rows(), want) {
		t.Fatal("Compact changed table content")
	}
	// The pre-compaction snapshot still reads (its segments' handles
	// outlive the unlink).
	view, _ := snap.Table("t")
	got := collect(view.Cursor(nil))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pre-compaction snapshot unreadable after Compact")
	}
	re := openDisk(t, dir)
	rt, _ := re.Table("t")
	if !reflect.DeepEqual(rt.Rows(), want) {
		t.Fatal("reopened table content diverged after Compact")
	}
	if got := countSegs(t, dir); got != 1 {
		t.Fatalf("%d segment files after Compact, want 1 (old ones not collected)", got)
	}
}

// TestCompactRewritesLegacyFormat: Compact must rewrite even a
// single-segment table when that segment predates format 2, so a
// migrated warehouse picks up encodings and zone maps.
func TestCompactRewritesLegacyFormat(t *testing.T) {
	t.Setenv("QUARRY_COMPACT_SEGMENTS", "0")
	dir := t.TempDir()
	rows := writeV1Store(t, dir, 300)
	db := openDisk(t, dir)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("t")
	if !reflect.DeepEqual(tbl.Rows(), rows) {
		t.Fatal("Compact of a v1 store changed content")
	}
	re := openDisk(t, dir)
	rt, _ := re.Table("t")
	if !reflect.DeepEqual(rt.Rows(), rows) {
		t.Fatal("reopened rewritten store diverged")
	}
	// The rewritten segment is format 2: its manifest pages carry zone
	// maps, so a prune-capable cursor now skips.
	snap, err := re.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	view, _ := snap.Table("t")
	cur := view.Cursor([]PrunePredicate{{Col: "i", Op: ">", Val: expr.Int(1 << 40)}})
	if got := collect(cur); len(got) != 0 {
		t.Fatalf("impossible predicate returned %d rows", len(got))
	}
	if _, skipped := cur.Stats(); skipped == 0 {
		t.Fatal("rewritten segment still has no zone maps (nothing skipped)")
	}
}

// TestCrashDuringCompaction kills a compacting commit at both fault
// stages; recovery must restore the pre-compaction catalog — same
// version, same rows, same segment files — with the half-written
// merged segment collected as an orphan.
func TestCrashDuringCompaction(t *testing.T) {
	for _, stage := range []string{"segments", "rename"} {
		t.Run(stage, func(t *testing.T) {
			t.Setenv("QUARRY_COMPACT_SEGMENTS", "0")
			dir := t.TempDir()
			rows, _ := seedCommitted(t, dir, 400)
			db := openDisk(t, dir)
			for round := 0; round < 3; round++ {
				base := 20000 * (round + 1)
				appendMixed(t, db, base, 60)
				for i := 0; i < 60; i++ {
					rows = append(rows, mixedRow(base+i))
				}
			}
			v := db.Version()
			segs := countSegs(t, dir)
			if segs != 4 {
				t.Fatalf("seeded %d segments, want 4", segs)
			}
			crashAt(t, stage)
			if err := db.Compact(); !errors.Is(err, errCrash) {
				t.Fatalf("Compact error = %v, want injected crash", err)
			}
			// Live DB untouched.
			if db.Version() != v {
				t.Fatalf("failed Compact bumped version to %d", db.Version())
			}
			live, _ := db.Table("t")
			if !reflect.DeepEqual(live.Rows(), rows) {
				t.Fatal("failed Compact mutated the live table")
			}
			TestingCommitFault = nil
			assertRecovered(t, dir, rows, v, segs)
		})
	}
}

// TestCrashDuringAutoCompactingAppend: an append that trips the
// auto-compaction threshold and then crashes must leave the
// pre-append state recoverable (neither the delta nor the merge
// survives).
func TestCrashDuringAutoCompactingAppend(t *testing.T) {
	for _, stage := range []string{"segments", "rename"} {
		t.Run(stage, func(t *testing.T) {
			t.Setenv("QUARRY_COMPACT_SEGMENTS", "1")
			dir := t.TempDir()
			rows, v := seedCommitted(t, dir, 300)
			db := openDisk(t, dir)
			segs := countSegs(t, dir)

			live, _ := db.Table("t")
			delta, _ := NewStagingTable("t", mixedCols)
			for i := 0; i < 50; i++ {
				if err := delta.Insert(mixedRow(30000 + i)); err != nil {
					t.Fatal(err)
				}
			}
			crashAt(t, stage)
			err := db.CommitRun(nil, []AppendDelta{{Target: live, Delta: delta}})
			if !errors.Is(err, errCrash) {
				t.Fatalf("CommitRun error = %v, want injected crash", err)
			}
			if live.NumRows() != 300 {
				t.Fatalf("failed compacting append visible: %d rows", live.NumRows())
			}
			TestingCommitFault = nil
			assertRecovered(t, dir, rows, v, segs)
		})
	}
}
