package storage

// Crash-injection suite for the disk backend: every test drives a
// commit into a simulated crash via TestingCommitFault, then reopens
// the directory as a fresh process would and asserts the recovered
// warehouse is byte-identical to the last committed version, with the
// failed run's orphan segments garbage-collected.

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"quarry/internal/expr"
	mf "quarry/internal/storage/manifest"
)

var errCrash = errors.New("injected crash")

// crashAt arms the fault hook for one named stage and disarms it when
// the test ends.
func crashAt(t *testing.T, stage string) {
	t.Helper()
	TestingCommitFault = func(s string) error {
		if s == stage {
			return errCrash
		}
		return nil
	}
	t.Cleanup(func() { TestingCommitFault = nil })
}

// seedCommitted builds a dir with one committed table of n rows and
// returns its rows (the recovery oracle) and committed version.
func seedCommitted(t *testing.T, dir string, n int) ([]Row, uint64) {
	t.Helper()
	db := openDisk(t, dir)
	tbl, err := db.CreateTable("t", mixedCols)
	if err != nil {
		t.Fatal(err)
	}
	fillMixed(t, tbl, n)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return tbl.Rows(), db.Version()
}

// countSegs counts segment files on disk.
func countSegs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if _, ok := mf.SegmentID(e.Name()); ok {
			n++
		}
	}
	return n
}

func assertRecovered(t *testing.T, dir string, wantRows []Row, wantVersion uint64, wantSegs int) {
	t.Helper()
	re := openDisk(t, dir)
	if re.Version() != wantVersion {
		t.Fatalf("recovered version %d, want %d", re.Version(), wantVersion)
	}
	tbl, ok := re.Table("t")
	if !ok {
		t.Fatal("recovered DB lost table t")
	}
	if got := tbl.Rows(); !reflect.DeepEqual(got, wantRows) {
		t.Fatalf("recovered rows differ from last committed version (%d vs %d rows)", len(got), len(wantRows))
	}
	if got := countSegs(t, dir); got != wantSegs {
		t.Fatalf("%d segment files after recovery, want %d (orphans not collected?)", got, wantSegs)
	}
}

// TestCrashBetweenSegmentsAndManifest kills the commit after the new
// segment files are written and synced but before the manifest is
// touched — the ISSUE's canonical crash point.
func TestCrashBetweenSegmentsAndManifest(t *testing.T) {
	dir := t.TempDir()
	rows, v := seedCommitted(t, dir, 1000)
	segs := countSegs(t, dir)

	db := openDisk(t, dir)
	staged, _ := NewStagingTable("t", mixedCols)
	for i := 0; i < 50; i++ {
		if err := staged.Insert(mixedRow(100000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	crashAt(t, "segments")
	if err := db.Publish(staged); !errors.Is(err, errCrash) {
		t.Fatalf("Publish error = %v, want injected crash", err)
	}
	// The failed run left orphan segment files behind.
	if got := countSegs(t, dir); got <= segs {
		t.Fatalf("expected orphan segments on disk, found %d (committed: %d)", got, segs)
	}
	// The live in-process DB is untouched: same version, same rows.
	if db.Version() != v {
		t.Fatalf("failed commit bumped version to %d", db.Version())
	}
	live, _ := db.Table("t")
	if !reflect.DeepEqual(live.Rows(), rows) {
		t.Fatal("failed commit mutated the live table")
	}
	TestingCommitFault = nil
	assertRecovered(t, dir, rows, v, segs)
}

// TestCrashBetweenTmpAndRename kills the commit after manifest.tmp is
// written and synced but before the rename — the last possible
// instant a crash must still recover the previous version.
func TestCrashBetweenTmpAndRename(t *testing.T) {
	dir := t.TempDir()
	rows, v := seedCommitted(t, dir, 1000)
	segs := countSegs(t, dir)

	db := openDisk(t, dir)
	staged, _ := NewStagingTable("t", mixedCols)
	if err := staged.Insert(mixedRow(7)); err != nil {
		t.Fatal(err)
	}
	crashAt(t, "rename")
	if err := db.Publish(staged); !errors.Is(err, errCrash) {
		t.Fatalf("Publish error = %v, want injected crash", err)
	}
	TestingCommitFault = nil
	assertRecovered(t, dir, rows, v, segs)
}

// TestCrashDuringAppendCommit proves a crashed append-mode commit
// leaves the reopened target at its previous length.
func TestCrashDuringAppendCommit(t *testing.T) {
	for _, stage := range []string{"segments", "rename"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			rows, v := seedCommitted(t, dir, 500)
			segs := countSegs(t, dir)

			db := openDisk(t, dir)
			live, _ := db.Table("t")
			delta, _ := NewStagingTable("t", mixedCols)
			for i := 0; i < 200; i++ {
				if err := delta.Insert(mixedRow(50000 + i)); err != nil {
					t.Fatal(err)
				}
			}
			crashAt(t, stage)
			err := db.CommitRun(nil, []AppendDelta{{Target: live, Delta: delta}})
			if !errors.Is(err, errCrash) {
				t.Fatalf("CommitRun error = %v, want injected crash", err)
			}
			if live.NumRows() != 500 {
				t.Fatalf("failed append visible in live table: %d rows", live.NumRows())
			}
			TestingCommitFault = nil
			assertRecovered(t, dir, rows, v, segs)
		})
	}
}

// TestCrashRecoveryThenCommit proves the recovered DB is fully
// writable: after a crash + reopen, a new commit succeeds and the
// re-reopened state reflects it (orphan GC freed the ids and files a
// new run needs).
func TestCrashRecoveryThenCommit(t *testing.T) {
	dir := t.TempDir()
	_, v := seedCommitted(t, dir, 300)

	db := openDisk(t, dir)
	staged, _ := NewStagingTable("t", mixedCols)
	if err := staged.Insert(mixedRow(1)); err != nil {
		t.Fatal(err)
	}
	crashAt(t, "segments")
	if err := db.Publish(staged); !errors.Is(err, errCrash) {
		t.Fatalf("Publish error = %v, want injected crash", err)
	}
	TestingCommitFault = nil

	re := openDisk(t, dir)
	staged2, _ := NewStagingTable("t", mixedCols)
	want := []Row{mixedRow(41), mixedRow(42)}
	if err := staged2.InsertAll(want); err != nil {
		t.Fatal(err)
	}
	if err := re.Publish(staged2); err != nil {
		t.Fatal(err)
	}
	final := openDisk(t, dir)
	if final.Version() != v+1 {
		t.Fatalf("version %d, want %d", final.Version(), v+1)
	}
	tbl, _ := final.Table("t")
	if !reflect.DeepEqual(tbl.Rows(), want) {
		t.Fatal("post-recovery commit not durable")
	}
}

// TestReadersDoNotBlockOnCommitIO pins the commit-concurrency design:
// segment and manifest I/O happen under the store's commit mutex, not
// db.mu, so snapshots and version reads proceed while a commit is in
// flight (stalled here at the fault hook, exactly where the fsyncs
// happen).
func TestReadersDoNotBlockOnCommitIO(t *testing.T) {
	dir := t.TempDir()
	rows, v := seedCommitted(t, dir, 200)
	db := openDisk(t, dir)

	inCommit := make(chan struct{})
	release := make(chan struct{})
	TestingCommitFault = func(stage string) error {
		if stage == "segments" {
			close(inCommit)
			<-release
		}
		return nil
	}
	t.Cleanup(func() { TestingCommitFault = nil })

	staged, _ := NewStagingTable("t", mixedCols)
	if err := staged.Insert(mixedRow(3)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- db.Publish(staged) }()
	<-inCommit

	// The commit is parked mid-I/O. Reads must complete now.
	if got := db.Version(); got != v {
		t.Errorf("version read mid-commit = %d, want %d", got, v)
	}
	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatalf("snapshot mid-commit: %v", err)
	}
	view, _ := snap.Table("t")
	if int(view.NumRows()) != len(rows) {
		t.Errorf("snapshot mid-commit sees %d rows, want %d", view.NumRows(), len(rows))
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := db.Version(); got != v+1 {
		t.Errorf("version after commit = %d, want %d", got, v+1)
	}
}

// TestRecoveryIgnoresStrayTmpManifest: a crash can leave manifest.tmp
// fully written; recovery must stick with manifest.json and delete the
// tmp rather than adopt it.
func TestRecoveryIgnoresStrayTmpManifest(t *testing.T) {
	dir := t.TempDir()
	rows, v := seedCommitted(t, dir, 100)
	segs := countSegs(t, dir)

	db := openDisk(t, dir)
	staged, _ := NewStagingTable("t", []Column{{Name: "z", Type: "int"}})
	if err := staged.Insert(Row{expr.Int(1)}); err != nil {
		t.Fatal(err)
	}
	crashAt(t, "rename")
	if err := db.Publish(staged); !errors.Is(err, errCrash) {
		t.Fatal(err)
	}
	TestingCommitFault = nil
	assertRecovered(t, dir, rows, v, segs)
	if got := countSegs(t, dir); got != segs {
		t.Fatalf("tmp manifest's segments survived recovery: %d vs %d", got, segs)
	}
}
