package storage

// Zone-map pruning cursors: a Cursor streams a TableView's rows in
// position order like ReadBatch, but takes a set of pushed-down
// filter conjuncts (column OP literal) and skips — without decoding —
// every page whose zone map proves no row in it can satisfy them all.
//
// Pruning is strictly conservative: a page is skipped only when the
// predicate can match NONE of its rows under the evaluator's own
// semantics (expr.Value.Compare / Equal — the zone bounds were
// computed with the same Compare, so float-vs-int coercion agrees),
// and pages with no zone map (format-1 segments, the in-memory tail)
// are never skipped. Callers therefore still evaluate the full filter
// on every returned row; the cursor only removes pages that could not
// have contributed. Unlike ReadBatch, Next may return short batches
// (it never stitches across page boundaries) — callers loop until
// nil.

import (
	"sync/atomic"

	"quarry/internal/expr"
)

// zoneMapPruning globally gates page skipping; on by default.
// Disabling it (SetZoneMapPruning) turns every Cursor into a plain
// full scan — the A/B lever for benchmarks and the prune-vs-full-scan
// property tests.
var zoneMapPruning atomic.Bool

func init() { zoneMapPruning.Store(true) }

// SetZoneMapPruning toggles zone-map page pruning globally, returning
// the previous setting. Pruning never changes results — only how many
// pages are decoded — so the toggle exists for benchmarks and tests.
func SetZoneMapPruning(on bool) bool { return zoneMapPruning.Swap(on) }

// PrunePredicate is one pushed-down conjunct of the form
// `column OP literal`. Op is spelled "=", "!=", "<", "<=", ">" or
// ">=". The predicate must be a conjunct of the caller's filter:
// the cursor skips pages where it can never hold.
type PrunePredicate struct {
	Col string
	Op  string
	Val expr.Value
}

// canMatch reports whether any row of a page with this zone entry
// could satisfy p. nrows is the page's row count. Unknown operators
// and incomparable bounds answer true (never skip on uncertainty).
func (z *zone) canMatch(nrows int, p *PrunePredicate) bool {
	if nrows-z.nulls <= 0 {
		// Every value is NULL: `NULL OP literal` is NULL, which no
		// EvalBool accepts.
		return false
	}
	if p.Val.IsNull() {
		// `col OP NULL` is NULL for every row, comparable or not.
		return false
	}
	if !z.hasBounds {
		return true
	}
	cmin, errMin := z.min.Compare(p.Val)
	cmax, errMax := z.max.Compare(p.Val)
	if errMin != nil || errMax != nil {
		// Incomparable kinds (e.g. string column, int literal). For
		// "=" Equal is false for every row — skip; for "!=" it is
		// true for every present row — keep; ordering comparisons
		// error at evaluation time, and pruning must not hide that.
		return p.Op != "="
	}
	switch p.Op {
	case "=":
		return cmin <= 0 && cmax >= 0
	case "!=":
		// Skip only when every present value IS the literal.
		return !(cmin == 0 && cmax == 0)
	case "<":
		return cmin < 0
	case "<=":
		return cmin <= 0
	case ">":
		return cmax > 0
	case ">=":
		return cmax >= 0
	}
	return true
}

// resolvedPred is a predicate bound to its physical column index.
type resolvedPred struct {
	ci int
	p  PrunePredicate
}

// Cursor streams a TableView's rows in position order, skipping
// prunable pages. Not safe for concurrent use.
type Cursor struct {
	view  *TableView
	preds []resolvedPred

	seg  int // current segment index in view.pg
	page int // current page within the segment
	off  int // rows of the current page already returned
	tail int // rows of the in-memory tail already returned

	pagesRead    int
	pagesSkipped int
}

// Cursor returns a pruning cursor over the view. Predicates naming
// columns the view lacks are ignored (they can never skip a page).
func (v *TableView) Cursor(preds []PrunePredicate) *Cursor {
	c := &Cursor{view: v}
	for _, p := range preds {
		if ci, ok := v.by[p.Col]; ok {
			c.preds = append(c.preds, resolvedPred{ci: ci, p: p})
		}
	}
	return c
}

// skip reports whether the page's zone map proves no row satisfies
// every predicate.
func (c *Cursor) skip(pm *pageMeta) bool {
	if len(c.preds) == 0 || pm.zones == nil || !zoneMapPruning.Load() {
		return false
	}
	for i := range c.preds {
		rp := &c.preds[i]
		if rp.ci >= len(pm.zones) {
			continue
		}
		if !pm.zones[rp.ci].canMatch(pm.rows, &rp.p) {
			return true
		}
	}
	return false
}

// Next returns the next batch of at most max rows, or nil at the end.
// Batches may be shorter than max (page remainders are returned as
// shared subslices, never reassembled); the tail is returned last and
// is never pruned. The returned slice is an immutable shared view.
func (c *Cursor) Next(max int) []Row {
	if max <= 0 {
		return nil
	}
	if pg := c.view.pg; pg != nil {
		for c.seg < len(pg.segs) {
			s := pg.segs[c.seg]
			if c.page >= len(s.pages) {
				c.seg++
				c.page, c.off = 0, 0
				continue
			}
			pm := &s.pages[c.page]
			if c.off == 0 && c.skip(pm) {
				c.pagesSkipped++
				c.page++
				continue
			}
			if c.off == 0 {
				c.pagesRead++
			}
			rows := s.page(c.page)
			n := len(rows) - c.off
			if n > max {
				n = max
			}
			out := rows[c.off : c.off+n : c.off+n]
			c.off += n
			if c.off >= len(rows) {
				c.page++
				c.off = 0
			}
			return out
		}
	}
	if c.tail < len(c.view.rows) {
		n := len(c.view.rows) - c.tail
		if n > max {
			n = max
		}
		out := c.view.rows[c.tail : c.tail+n : c.tail+n]
		c.tail += n
		return out
	}
	return nil
}

// Stats reports how many pages the cursor decoded and how many its
// zone maps pruned (so far).
func (c *Cursor) Stats() (pagesRead, pagesSkipped int) {
	return c.pagesRead, c.pagesSkipped
}
