package storage

// Disk backend: a paged columnar layout behind the existing
// DB/Table/Snapshot API.
//
// Layout of a storage directory:
//
//	manifest.json   the committed catalog: for every table its column
//	                definitions and ordered segment list (file name,
//	                row count, page directory), plus the DB version
//	seg-NNNNNNNN.qseg  immutable segment files (see page.go)
//
// A table's rows are the concatenation of its manifest segments
// followed by its in-memory tail (rows inserted since the last
// commit). Replace-mode publishes write whole new segments; appends
// become delta segments — segments are never rewritten in place.
//
// Commit protocol (the crash-safety story):
//
//  1. write + fsync every new segment file (they are orphans until
//     referenced — a crash here loses nothing), then fsync the
//     directory so their entries are durable before the manifest can
//     name them,
//  2. write + fsync manifest.tmp with the complete new catalog,
//  3. rename(manifest.tmp, manifest.json) and fsync the directory —
//     the SINGLE atomic commit point,
//  4. only then swap the in-memory pagers and delete segment files
//     the new manifest no longer references (purging their decoded
//     pages, which pin the dead segments' file descriptors, from the
//     buffer pool).
//
// A crash anywhere before step 3 leaves manifest.json describing the
// previous committed version; Open discards orphaned segments and
// rehydrates that version. A failed commit inside a live process
// likewise leaves the DB's in-memory state untouched, preserving
// CommitRun's "failed runs leave live tables byte-identical"
// contract. Snapshots taken before a commit keep reading their old
// segments even after the files are unlinked: every segment holds its
// file handle open for the segment object's lifetime.
//
// One process per directory: the store takes no lock file; opening
// the same directory from two processes is unsupported.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"quarry/internal/expr"
	mf "quarry/internal/storage/manifest"
)

// The manifest schema and the fsync+rename commit point live in the
// transport-agnostic internal/storage/manifest package (shared with
// internal/replication, which ships catalogs between machines through
// the same primitives). The aliases below keep this file — and the
// format-compatibility tests — reading naturally.
const (
	manifestName = mf.FileName
	manifestTmp  = mf.TmpName
	// manifestFormatV1 is the legacy raw-page format (fixed 64 KiB
	// pages, untagged raw chunks, no zone maps); this build still reads
	// it. manifestFormatV2 adds per-chunk compressed encodings, 4 KiB
	// page blocks and zone maps (see page.go/encoding.go) and is what
	// every commit writes.
	manifestFormatV1 = mf.FormatV1
	manifestFormatV2 = mf.FormatV2
	segPrefix        = mf.SegPrefix
	segSuffix        = mf.SegSuffix
)

type (
	manifest        = mf.Manifest
	manifestTable   = mf.Table
	manifestSegment = mf.Segment
	manifestPage    = mf.Page
	manifestZone    = mf.Zone
	manifestValue   = mf.Value
)

// mmapEnabled gates the mmap page source (QUARRY_MMAP=off falls back
// to pread); evaluated once at startup.
var mmapEnabled = os.Getenv("QUARRY_MMAP") != "off"

// compactThreshold reads QUARRY_COMPACT_SEGMENTS: when a commit would
// leave a table with more than this many segments, the commit folds
// the table's existing segments into its new one (0 disables
// auto-compaction; default 16).
func compactThreshold() int {
	s := os.Getenv("QUARRY_COMPACT_SEGMENTS")
	if s == "" {
		return 16
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 16
	}
	return n
}

// TestingCommitFault is a crash-injection hook for tests: when set,
// it is consulted at the named commit stages ("segments": all segment
// files written and synced, manifest untouched; "rename":
// manifest.tmp written and synced, final rename pending). Returning a
// non-nil error aborts the commit exactly as a crash at that point
// would — new segment files are left behind as orphans for recovery
// to collect, and the in-memory DB is not mutated. Never set outside
// tests.
var TestingCommitFault func(stage string) error

// diskStore is the per-DB handle on a storage directory.
type diskStore struct {
	dir string
	// commitMu serializes every commit (and therefore every catalog
	// mutation of a disk-backed DB: all mutators commit). Holding it
	// through the segment and manifest I/O keeps db.mu free for
	// readers — a Snapshot never waits on a commit's fsyncs, only on
	// the brief pointer-swap apply step. Lock order: commitMu before
	// db.mu before Table.mu; nothing acquires commitMu while holding
	// db.mu. nextSeg is guarded by commitMu.
	commitMu sync.Mutex
	nextSeg  uint64
	cache    *pageCache
	// compactSegs is the auto-compaction threshold (see
	// compactThreshold); guarded by nothing — set once at Open.
	compactSegs int
}

// segment is one immutable on-disk run of rows. The open file handle
// lives as long as the segment object: readers holding a pager keep
// their data readable even after a republish unlinks the file (the
// runtime closes the descriptor when the segment is collected).
type segment struct {
	file   *os.File
	name   string // base file name
	dir    string // owning store's directory
	format int    // page format (manifestFormatV1 or V2)
	cols   []Column
	rows   int
	pages  []pageMeta
	cache  *pageCache
	data   []byte // mmap of the whole file, nil when unavailable
}

// pageMeta locates one page inside a segment.
type pageMeta struct {
	off   int64
	size  int // padded size: a pageSize (v1) or pageBlock (v2) multiple
	rows  int
	first int    // index of the page's first row within the segment
	raw   int    // raw encoded size: the buffer-pool charge (0 in v1)
	zones []zone // per-column zone map (nil in v1: never prune)
}

// charge is the buffer-pool cost of the decoded page: its raw encoded
// size when known (compressed on-disk sizes badly undercount decoded
// memory), else its on-disk size (v1 pages, where the two coincide).
func (p *pageMeta) charge() int {
	if p.raw > 0 {
		return p.raw
	}
	return p.size
}

// tryMmap maps the segment file read-only as the page source; on any
// failure the segment falls back to pread. Decoded pages copy every
// value out of the buffer, so nothing aliases the mapping; it is
// unmapped when the segment object is collected.
func (s *segment) tryMmap() {
	if !mmapEnabled || len(s.pages) == 0 {
		return
	}
	last := s.pages[len(s.pages)-1]
	data := sysMmap(s.file, last.off+int64(last.size))
	if data == nil {
		return
	}
	s.data = data
	runtime.SetFinalizer(s, func(fs *segment) { sysMunmap(fs.data) })
}

// page returns the decoded rows of page i, through the buffer pool.
// Segment structure is validated at write/open time, so a decode
// failure here means on-disk corruption — that is a panic, not an
// error: the read API has no error channel and silently returning
// fewer rows would corrupt results.
func (s *segment) page(i int) []Row {
	k := pageKey{seg: s, page: i}
	if rows, ok := s.cache.get(k); ok {
		return rows
	}
	pm := &s.pages[i]
	var buf []byte
	if s.data != nil {
		buf = s.data[pm.off : pm.off+int64(pm.size)]
	} else {
		buf = make([]byte, pm.size)
		if _, err := s.file.ReadAt(buf, pm.off); err != nil {
			panic(fmt.Sprintf("storage: segment %s page %d: %v", s.name, i, err))
		}
	}
	rows, err := decodePage(s.format, s.cols, buf)
	if err != nil {
		panic(fmt.Sprintf("storage: segment %s page %d corrupt: %v", s.name, i, err))
	}
	if len(rows) != pm.rows {
		panic(fmt.Sprintf("storage: segment %s page %d holds %d rows, manifest says %d",
			s.name, i, len(rows), pm.rows))
	}
	s.cache.put(k, rows, pm.charge())
	return rows
}

// pageFor returns the index of the page containing segment-local row
// r.
func (s *segment) pageFor(r int) int {
	return sort.Search(len(s.pages), func(i int) bool { return s.pages[i].first > r }) - 1
}

// pager is an immutable view over an ordered segment list. Appends
// never mutate a pager — commits build an extended copy and swap it
// under the table lock — so snapshots and frozen views capture a
// pager pointer and are done.
type pager struct {
	segs   []*segment
	starts []int // starts[i] = global index of segs[i]'s first row
	rows   int
}

func newPager(segs []*segment) *pager {
	p := &pager{segs: segs, starts: make([]int, len(segs))}
	for i, s := range segs {
		p.starts[i] = p.rows
		p.rows += s.rows
	}
	return p
}

// extend returns a new pager appending seg (sharing the existing
// segment prefix).
func (p *pager) extend(seg *segment) *pager {
	var segs []*segment
	if p != nil {
		segs = append(segs, p.segs...)
	}
	return newPager(append(segs, seg))
}

func (p *pager) numRows() int {
	if p == nil {
		return 0
	}
	return p.rows
}

// readBatch returns exactly min(max, rows-start) rows (callers step
// cursors by a fixed batch size, so short reads are not an option).
// A range satisfied by one decoded page is returned as a shared
// subslice; ranges crossing page or segment boundaries are assembled
// into a fresh slice.
func (p *pager) readBatch(start, max int) []Row {
	if start < 0 || p == nil || start >= p.rows || max <= 0 {
		return nil
	}
	if start+max > p.rows {
		max = p.rows - start
	}
	var out []Row
	pos, remaining := start, max
	for remaining > 0 {
		si := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > pos }) - 1
		seg := p.segs[si]
		local := pos - p.starts[si]
		pi := seg.pageFor(local)
		rows := seg.page(pi)
		ps := local - seg.pages[pi].first
		n := len(rows) - ps
		if n > remaining {
			n = remaining
		}
		if out == nil && n == max {
			return rows[ps : ps+n : ps+n]
		}
		if out == nil {
			out = make([]Row, 0, max)
		}
		out = append(out, rows[ps:ps+n]...)
		pos += n
		remaining -= n
	}
	return out
}

// foreignTo reports whether any of the pager's segments belongs to a
// store other than the one rooted at dir.
func (p *pager) foreignTo(dir string) bool {
	if p == nil {
		return false
	}
	for _, s := range p.segs {
		if s.dir != dir {
			return true
		}
	}
	return false
}

// referencedFiles lists the segment file names a pager references.
func (p *pager) referencedFiles(into map[string]bool) {
	if p == nil {
		return
	}
	for _, s := range p.segs {
		into[s.name] = true
	}
}

// readAll materialises every row of the pager, in order.
func (p *pager) readAll(into []Row) []Row {
	if p == nil {
		return into
	}
	for start := 0; start < p.rows; {
		batch := p.readBatch(start, 4096)
		into = append(into, batch...)
		start += len(batch)
	}
	return into
}

// needsRewrite reports whether any segment predates the current page
// format — compaction re-encodes such tables even when they are a
// single segment.
func (p *pager) needsRewrite() bool {
	if p == nil {
		return false
	}
	for _, s := range p.segs {
		if s.format != manifestFormatV2 {
			return true
		}
	}
	return false
}

// Format-1 manifests (no per-segment format, no zone maps) are still
// read; every commit writes format 2, tagging retained legacy
// segments "format": 1 so a mixed catalog decodes each segment
// correctly. The expr.Value ↔ manifest.Value conversions below stay
// here: the manifest package is pure catalog data, oblivious to the
// value representation.

func valueToManifest(v expr.Value) *manifestValue {
	switch v.Kind() {
	case expr.KindInt:
		i := v.AsInt()
		return &manifestValue{I: &i}
	case expr.KindFloat:
		f, _ := v.AsFloat()
		return &manifestValue{F: &f}
	case expr.KindString:
		s := v.AsString()
		return &manifestValue{S: &s}
	case expr.KindBool:
		b := v.AsBool()
		return &manifestValue{B: &b}
	}
	return nil
}

func manifestToValue(mv *manifestValue) expr.Value {
	switch {
	case mv == nil:
		return expr.Value{}
	case mv.I != nil:
		return expr.Int(*mv.I)
	case mv.F != nil:
		return expr.Float(*mv.F)
	case mv.S != nil:
		return expr.Str(*mv.S)
	case mv.B != nil:
		return expr.Bool(*mv.B)
	}
	return expr.Value{}
}

func zonesToManifest(zs []zone) []manifestZone {
	if len(zs) == 0 {
		return nil
	}
	out := make([]manifestZone, len(zs))
	for i, z := range zs {
		out[i] = manifestZone{Nulls: z.nulls}
		if z.hasBounds {
			out[i].Min = valueToManifest(z.min)
			out[i].Max = valueToManifest(z.max)
		}
	}
	return out
}

// zonesFromManifest rehydrates a page's zone map; a malformed entry
// (wrong arity) yields nil — the page is simply never pruned.
func zonesFromManifest(ms []manifestZone, ncols int) []zone {
	if len(ms) != ncols {
		return nil
	}
	out := make([]zone, ncols)
	for i, mz := range ms {
		z := zone{nulls: mz.Nulls}
		if mz.Min != nil && mz.Max != nil {
			z.min = manifestToValue(mz.Min)
			z.max = manifestToValue(mz.Max)
			z.hasBounds = !z.min.IsNull() && !z.max.IsNull()
		}
		out[i] = z
	}
	return out
}

// writeSegment encodes rows into a fresh segment file (format 2,
// per-chunk encodings chosen by the stats pass) and fsyncs it.
func (st *diskStore) writeSegment(cols []Column, rows []Row) (*segment, error) {
	id := st.nextSeg
	st.nextSeg++
	name := fmt.Sprintf("%s%08d%s", segPrefix, id, segSuffix)
	f, err := os.OpenFile(filepath.Join(st.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{file: f, name: name, dir: st.dir, format: manifestFormatV2,
		cols: cols, rows: len(rows), cache: st.cache}
	var off int64
	first := 0
	for _, n := range splitPages(len(cols), rows) {
		ep := encodePage(cols, rows[first:first+n])
		if _, err := f.WriteAt(ep.buf, off); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: writing %s: %w", name, err)
		}
		seg.pages = append(seg.pages, pageMeta{off: off, size: len(ep.buf), rows: n,
			first: first, raw: ep.raw, zones: ep.zones})
		off += int64(len(ep.buf))
		first += n
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: syncing %s: %w", name, err)
	}
	seg.tryMmap()
	return seg, nil
}

// descriptor rebuilds the segment's manifest entry. It is canonical:
// rehydrating a segment and re-deriving its descriptor yields the
// entry the manifest carried, which is what lets Reload — and the
// replication diff — compare descriptors to decide whether the
// on-disk file under a name is the one a new catalog means.
func (s *segment) descriptor() manifestSegment {
	ms := manifestSegment{File: s.name, Rows: s.rows, Format: s.format}
	for _, p := range s.pages {
		ms.Pages = append(ms.Pages, manifestPage{Off: p.off, Size: p.size,
			Rows: p.rows, Raw: p.raw, Zones: zonesToManifest(p.zones)})
	}
	return ms
}

// openSegment rehydrates a manifest-described segment of the given
// page format.
func (st *diskStore) openSegment(ms manifestSegment, cols []Column, format int) (*segment, error) {
	f, err := os.Open(filepath.Join(st.dir, ms.File))
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	align := pageSize
	if format >= manifestFormatV2 {
		align = pageBlock
	}
	seg := &segment{file: f, name: ms.File, dir: st.dir, format: format,
		cols: cols, rows: ms.Rows, cache: st.cache}
	first, want := 0, int64(0)
	for _, mp := range ms.Pages {
		if mp.Off != want || mp.Size <= 0 || mp.Size%align != 0 || mp.Rows <= 0 {
			f.Close()
			return nil, fmt.Errorf("segment %s has an inconsistent page directory", ms.File)
		}
		seg.pages = append(seg.pages, pageMeta{off: mp.Off, size: mp.Size, rows: mp.Rows,
			first: first, raw: mp.Raw, zones: zonesFromManifest(mp.Zones, len(cols))})
		first += mp.Rows
		want += int64(mp.Size)
	}
	if first != ms.Rows {
		f.Close()
		return nil, fmt.Errorf("segment %s pages sum to %d rows, manifest says %d", ms.File, first, ms.Rows)
	}
	if info.Size() < want {
		f.Close()
		return nil, fmt.Errorf("segment %s truncated: %d bytes on disk, %d expected", ms.File, info.Size(), want)
	}
	seg.tryMmap()
	return seg, nil
}

// rehydrate builds the in-memory catalog a (validated) manifest
// describes, in manifest order, returning the tables, the order, and
// the referenced segment file set, and bumping st.nextSeg past every
// referenced id. An existing segment object from reuse is carried
// over — open handle, decoded pages, mmap — when its descriptor and
// columns match the manifest entry exactly; a name whose descriptor
// differs (a recycled segment id: same file name, different content)
// is re-opened from disk instead. Callers hold st.commitMu, or run
// before the DB is published (Open).
func (st *diskStore) rehydrate(man *manifest, reuse map[string]*segment) (map[string]*Table, []string, map[string]bool, error) {
	tables := map[string]*Table{}
	var order []string
	referenced := map[string]bool{}
	for _, mt := range man.Tables {
		t, err := newTable(mt.Name, mt.Columns)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("manifest table %q: %w", mt.Name, err)
		}
		var segs []*segment
		for _, ms := range mt.Segments {
			format := ms.Format
			if format == 0 {
				format = man.Format
			}
			seg := reuse[ms.File]
			if seg == nil || seg.format != format || !columnsEqual(seg.cols, t.Columns) ||
				!sameDescriptor(seg.descriptor(), ms) {
				if seg, err = st.openSegment(ms, t.Columns, format); err != nil {
					return nil, nil, nil, fmt.Errorf("table %q: %w", mt.Name, err)
				}
			}
			segs = append(segs, seg)
			referenced[ms.File] = true
			if id, ok := mf.SegmentID(ms.File); ok && id >= st.nextSeg {
				st.nextSeg = id + 1
			}
		}
		if len(segs) > 0 {
			t.pg = newPager(segs)
		}
		tables[mt.Name] = t
		order = append(order, mt.Name)
	}
	return tables, order, referenced, nil
}

// Open opens (or initialises) a disk-backed database rooted at dir.
// Recovery is part of opening: the latest committed manifest is
// rehydrated and every file it does not reference — segments written
// by a run that crashed before its manifest rename, a stray
// manifest.tmp — is deleted.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	st := &diskStore{dir: dir, cache: newPageCache(pageCacheBytes), compactSegs: compactThreshold()}
	db := &DB{tables: map[string]*Table{}, store: st}
	referenced := map[string]bool{}
	man, _, err := mf.Read(dir)
	switch {
	case err == nil:
		tables, order, refs, err := st.rehydrate(man, nil)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		db.version = man.Version
		db.tables, db.order, referenced = tables, order, refs
	case os.IsNotExist(err):
		// Fresh directory (or a crash before the very first commit).
	default:
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	st.gc(referenced)
	return db, nil
}

// sameDescriptor compares two segment descriptors structurally (the
// descriptors are pure data; canonical JSON is the cheapest deep
// equality that cannot drift from the schema).
func sameDescriptor(a, b manifestSegment) bool {
	aj, errA := json.Marshal(a)
	bj, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(aj) == string(bj)
}

func columnsEqual(a, b []Column) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gc deletes every segment file not in referenced, plus any stale
// manifest.tmp, and purges dead segments' pages (which pin open file
// descriptors) from the buffer pool. Errors are ignored: a leftover
// orphan is collected by the next gc, and never read (the manifest
// does not name it).
func (st *diskStore) gc(referenced map[string]bool) {
	st.cache.purge(func(s *segment) bool {
		return s.dir != st.dir || referenced[s.name]
	})
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestTmp {
			os.Remove(filepath.Join(st.dir, name))
			continue
		}
		if mf.IsSegmentName(name) && !referenced[name] {
			os.Remove(filepath.Join(st.dir, name))
		}
	}
}

// commitDisk persists the tentative catalog (order + tables, which
// may include tables not yet registered in db.tables) at manifest
// version v, appending extra[t] (staged append-delta rows) after t's
// unpersisted tail. Once the manifest rename lands it takes db.mu
// just long enough to swap the affected tables' pagers, drop their
// persisted tail prefixes and run the caller's apply step (catalog
// map/order/version changes); all segment and manifest I/O happens
// WITHOUT db.mu, so concurrent snapshots and version reads never
// wait on a commit's fsyncs. On failure the in-memory DB is
// untouched and the half-written segment files are removed (unless
// TestingCommitFault simulated a crash, in which case they are left
// for Open's recovery to collect). Callers hold st.commitMu — which
// is what keeps the tentative catalog stable while unlocked — and
// must NOT hold db.mu.
//
// Compaction rides the same commit point: a table named in compact
// (or one that auto-compaction's segment-count threshold trips on)
// has its committed segments folded together with its tail into ONE
// freshly encoded segment — same rows, same order, re-run encoding
// selection — referenced by the same atomic manifest rename. A crash
// anywhere before the rename recovers the pre-compaction segment
// list; the old segments are deleted only after the rename (readers
// holding pre-compaction snapshots keep their open handles).
func (db *DB) commitDisk(v uint64, order []string, tables map[string]*Table, extra map[*Table][]Row, compact map[string]bool, apply func()) error {
	st := db.store
	type pend struct {
		t     *Table
		tailN int
		newPg *pager
	}
	var pends []pend
	var newSegs []*segment
	cleanup := func() {
		for _, s := range newSegs {
			s.file.Close()
			os.Remove(filepath.Join(st.dir, s.name))
		}
	}
	fault := func(stage string) error {
		if TestingCommitFault == nil {
			return nil
		}
		return TestingCommitFault(stage)
	}
	man := manifest{Format: manifestFormatV2, Version: v}
	for _, name := range order {
		t := tables[name]
		t.mu.RLock()
		pg := t.pg
		tail := t.rows[:len(t.rows):len(t.rows)]
		t.mu.RUnlock()
		rows := tail
		// A pager holding another store's segments (a frozen view from
		// a different disk-backed DB, attached here) cannot be
		// referenced by this directory's manifest — the files live
		// elsewhere, and recovery would fail (or, on a name collision,
		// silently read the wrong bytes). Materialize such tables into
		// local segments instead.
		if pg.foreignTo(st.dir) {
			rows = append(pg.readAll(make([]Row, 0, pg.rows+len(tail))), tail...)
			pg = nil
		}
		if ex := extra[t]; len(ex) > 0 {
			merged := make([]Row, 0, len(rows)+len(ex))
			merged = append(merged, rows...)
			merged = append(merged, ex...)
			rows = merged
		}
		// Compaction decision: forced by the caller, or the committed
		// catalog would exceed the per-table segment bound.
		doCompact := compact[name]
		if !doCompact && st.compactSegs > 0 && pg != nil {
			segs := len(pg.segs)
			if len(rows) > 0 {
				segs++
			}
			doCompact = segs > st.compactSegs
		}
		if doCompact && pg != nil && (len(pg.segs) > 1 || len(rows) > 0 || pg.needsRewrite()) {
			rows = append(pg.readAll(make([]Row, 0, pg.rows+len(rows))), rows...)
			pg = nil
		}
		newPg := pg
		if len(rows) > 0 {
			seg, err := st.writeSegment(t.Columns, rows)
			if err != nil {
				cleanup()
				return err
			}
			newSegs = append(newSegs, seg)
			newPg = pg.extend(seg)
		}
		pends = append(pends, pend{t: t, tailN: len(tail), newPg: newPg})
		mt := manifestTable{Name: name, Columns: t.Columns}
		if newPg != nil {
			for _, s := range newPg.segs {
				mt.Segments = append(mt.Segments, s.descriptor())
			}
		}
		man.Tables = append(man.Tables, mt)
	}
	if err := fault("segments"); err != nil {
		return err
	}
	// Make the new segments' DIRECTORY ENTRIES durable before the
	// manifest can name them: f.Sync persists a file's data and inode
	// but not its entry in the directory, so without this a power
	// loss could persist the renamed manifest while the segment files
	// it references are gone — an unrecoverable catalog instead of a
	// clean previous-version recovery.
	if len(newSegs) > 0 {
		if err := mf.FsyncDir(st.dir); err != nil {
			cleanup()
			return fmt.Errorf("storage: syncing %s: %w", st.dir, err)
		}
	}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		cleanup()
		return err
	}
	if err := mf.Stage(st.dir, data); err != nil {
		cleanup()
		return fmt.Errorf("storage: %w", err)
	}
	if err := fault("rename"); err != nil {
		return err
	}
	// The rename inside Install IS the commit: once it lands,
	// manifest.json names the new catalog and the in-memory state must
	// follow no matter what — returning an error after it would roll
	// back a run that recovery would resurrect. (Install treats the
	// post-rename directory fsync as best-effort for exactly that
	// reason: its failure only weakens durability, recovering the
	// PREVIOUS version after a crash, which is indistinguishable from
	// crashing a moment earlier.)
	if err := mf.Install(st.dir); err != nil {
		cleanup()
		return err
	}
	// Committed. Swap pagers, drop persisted tails and apply the
	// caller's catalog changes under db.mu, then collect
	// no-longer-referenced segments.
	referenced := map[string]bool{}
	db.mu.Lock()
	for _, p := range pends {
		p.t.mu.Lock()
		p.t.pg = p.newPg
		p.t.rows = p.t.rows[p.tailN:]
		p.t.mu.Unlock()
		p.newPg.referencedFiles(referenced)
	}
	if apply != nil {
		apply()
	}
	db.mu.Unlock()
	st.gc(referenced)
	return nil
}

// catalogWith builds the tentative (order, tables) catalog of the
// current DB plus the given additions (same-name additions replace).
// Callers hold st.commitMu, which freezes the catalog against every
// other mutator; the read lock below only orders the reads against a
// concurrent commit's apply step.
func (db *DB) catalogWith(add []*Table) ([]string, map[string]*Table) {
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables)+len(add))
	for n, t := range db.tables {
		tables[n] = t
	}
	order := append([]string(nil), db.order...)
	db.mu.RUnlock()
	for _, t := range add {
		if _, ok := tables[t.Name]; !ok {
			order = append(order, t.Name)
		}
		tables[t.Name] = t
	}
	return order, tables
}

// Checkpoint persists every table's unpersisted tail rows and commits
// a fresh manifest at the current version. It is a no-op for
// in-memory databases. Rows loaded through an ETL run are committed
// by the run itself (CommitRun); Checkpoint covers rows inserted
// directly — e.g. a generated source dataset — before any run has
// happened.
func (db *DB) Checkpoint() error {
	st := db.store
	if st == nil {
		return nil
	}
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	order, tables := db.catalogWith(nil)
	return db.commitDisk(db.Version(), order, tables, nil, nil, nil)
}

// Compact folds every disk table's segments (and any unpersisted tail
// rows) into a single freshly encoded segment per table, re-running
// encoding selection over the merged data, through the same atomic
// manifest commit as every other mutation. The DB version does not
// change — the content is byte-identical, so version-keyed caches
// stay valid — and snapshots taken before the call keep reading their
// old segments through their open handles. Tables already compact
// (one current-format segment, no tail) are left untouched. A no-op
// for in-memory databases.
//
// Commits also compact automatically whenever a table would exceed
// the QUARRY_COMPACT_SEGMENTS bound (default 16); Compact is the
// explicit, compact-everything form.
func (db *DB) Compact() error {
	st := db.store
	if st == nil {
		return nil
	}
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	order, tables := db.catalogWith(nil)
	force := make(map[string]bool, len(order))
	for _, name := range order {
		force[name] = true
	}
	return db.commitDisk(db.Version(), order, tables, nil, force, nil)
}

// TableDiskStats is one table's committed on-disk footprint.
type TableDiskStats struct {
	Segments int   `json:"segments"`
	Pages    int   `json:"pages"`
	Bytes    int64 `json:"bytes"`
}

// DiskStats reports each table's segment count, page count and byte
// size (committed segments only — unpersisted tail rows have no disk
// footprint). Nil for in-memory databases.
func (db *DB) DiskStats() map[string]TableDiskStats {
	if db.store == nil {
		return nil
	}
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables))
	for n, t := range db.tables {
		tables[n] = t
	}
	db.mu.RUnlock()
	out := make(map[string]TableDiskStats, len(tables))
	for name, t := range tables {
		pg, _ := t.capture()
		var s TableDiskStats
		if pg != nil {
			for _, seg := range pg.segs {
				s.Segments++
				s.Pages += len(seg.pages)
				if n := len(seg.pages); n > 0 {
					last := seg.pages[n-1]
					s.Bytes += last.off + int64(last.size)
				}
			}
		}
		out[name] = s
	}
	return out
}

// StorageDir reports the backing directory of a disk-backed database
// ("" for in-memory).
func (db *DB) StorageDir() string {
	if db.store == nil {
		return ""
	}
	return db.store.dir
}
