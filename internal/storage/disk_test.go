package storage

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"quarry/internal/expr"
	mf "quarry/internal/storage/manifest"
)

// mixedCols exercises every column type plus NULLs.
var mixedCols = []Column{
	{Name: "i", Type: "int"},
	{Name: "f", Type: "float"},
	{Name: "s", Type: "string"},
	{Name: "b", Type: "bool"},
}

func mixedRow(i int) Row {
	if i%7 == 3 {
		return Row{expr.Null(), expr.Null(), expr.Null(), expr.Null()}
	}
	f := float64(i) * 1.25
	if i%11 == 5 {
		f = math.Inf(1)
	}
	return Row{
		expr.Int(int64(i)),
		expr.Float(f),
		expr.Str(strings.Repeat("v", i%13) + "·row"),
		expr.Bool(i%2 == 0),
	}
}

func TestPageRoundTrip(t *testing.T) {
	var rows []Row
	for i := 0; i < 500; i++ {
		rows = append(rows, mixedRow(i))
	}
	ep := encodePage(mixedCols, rows)
	if len(ep.buf)%pageBlock != 0 {
		t.Fatalf("page not padded to pageBlock multiple: %d", len(ep.buf))
	}
	if len(ep.zones) != len(mixedCols) {
		t.Fatalf("page has %d zone entries, want %d", len(ep.zones), len(mixedCols))
	}
	if ep.raw <= 0 {
		t.Fatalf("page raw size %d, want > 0", ep.raw)
	}
	got, err := decodePage(manifestFormatV2, mixedCols, ep.buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("decoded page differs from input")
	}
	// The float column holds +Inf rows: its zone entry must carry no
	// bounds (Compare treats NaN/Inf unsafely for pruning).
	if ep.zones[1].hasBounds {
		t.Fatal("float column with +Inf rows still has zone bounds")
	}
	if !ep.zones[0].hasBounds {
		t.Fatal("int column lost its zone bounds")
	}
}

func TestSplitPagesOversizeRow(t *testing.T) {
	cols := []Column{{Name: "s", Type: "string"}}
	rows := []Row{
		{expr.Str("small")},
		{expr.Str(strings.Repeat("x", 2*pageSize))}, // alone exceeds a page
		{expr.Str("small2")},
	}
	counts := splitPages(1, rows)
	if !reflect.DeepEqual(counts, []int{1, 1, 1}) {
		t.Fatalf("splitPages = %v, want [1 1 1]", counts)
	}
	for i, n := range counts {
		ep := encodePage(cols, rows[i:i+n])
		if len(ep.buf)%pageBlock != 0 {
			t.Fatalf("oversize page %d not padded to multiple: %d", i, len(ep.buf))
		}
		got, err := decodePage(manifestFormatV2, cols, ep.buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rows[i:i+n]) {
			t.Fatalf("page %d round-trip mismatch", i)
		}
	}
}

// openDisk opens a disk DB and fails the test on error.
func openDisk(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func fillMixed(t *testing.T, tbl *Table, n int) {
	t.Helper()
	var rows []Row
	for i := 0; i < n; i++ {
		rows = append(rows, mixedRow(i))
	}
	if err := tbl.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
}

func assertTableEqual(t *testing.T, got, want *Table) {
	t.Helper()
	if !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("columns differ: %v vs %v", got.Columns, want.Columns)
	}
	if !reflect.DeepEqual(got.Rows(), want.Rows()) {
		t.Fatalf("table %q rows differ after reopen", got.Name)
	}
}

// TestDiskReopenRoundTrip is the backbone: create, checkpoint, reopen,
// byte-identical, with a row count spanning several pages.
func TestDiskReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, err := db.CreateTable("t", mixedCols)
	if err != nil {
		t.Fatal(err)
	}
	fillMixed(t, tbl, 5000)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	v := db.Version()

	re := openDisk(t, dir)
	if re.Version() != v {
		t.Fatalf("reopened version %d, want %d", re.Version(), v)
	}
	got, ok := re.Table("t")
	if !ok {
		t.Fatal("table lost on reopen")
	}
	assertTableEqual(t, got, tbl)
}

func TestDiskPagedReadBatchExactCounts(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, _ := db.CreateTable("t", mixedCols)
	fillMixed(t, tbl, 3000)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re := openDisk(t, dir)
	got, _ := re.Table("t")
	if got.NumRows() != 3000 {
		t.Fatalf("NumRows = %d", got.NumRows())
	}
	// Unpersisted tail on top of the paged base.
	if err := got.Insert(mixedRow(9001)); err != nil {
		t.Fatal(err)
	}
	// Exact batch lengths at every offset, including ranges crossing
	// page boundaries and the paged-base/tail boundary.
	for _, bs := range []int{1, 7, 512, 1024, 2999, 3001, 10000} {
		pos := 0
		for {
			b := got.ReadBatch(pos, bs)
			if b == nil {
				break
			}
			wantLen := bs
			if pos+bs > 3001 {
				wantLen = 3001 - pos
			}
			if len(b) != wantLen {
				t.Fatalf("ReadBatch(%d, %d) returned %d rows, want %d", pos, bs, len(b), wantLen)
			}
			pos += len(b)
		}
		if pos != 3001 {
			t.Fatalf("batch size %d walked %d rows, want 3001", bs, pos)
		}
	}
	if !reflect.DeepEqual(got.ReadBatch(2999, 2)[1], Row(mixedRow(9001))) {
		t.Fatal("tail row not readable past the paged base")
	}
}

func TestDiskPageCacheEviction(t *testing.T) {
	old := pageCacheBytes
	pageCacheBytes = 2 * pageSize // force constant eviction
	defer func() { pageCacheBytes = old }()

	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, _ := db.CreateTable("t", mixedCols)
	fillMixed(t, tbl, 20000) // many pages
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re := openDisk(t, dir)
	got, _ := re.Table("t")
	// Two full walks: the second re-decodes evicted pages.
	for walk := 0; walk < 2; walk++ {
		i := 0
		err := got.Scan(func(r Row) error {
			if !reflect.DeepEqual(r, Row(mixedRow(i))) {
				t.Fatalf("walk %d row %d mismatch", walk, i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != 20000 {
			t.Fatalf("walk %d saw %d rows", walk, i)
		}
	}
}

func TestDiskCommitRunPublishAndAppend(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	live, _ := db.CreateTable("live", []Column{{Name: "x", Type: "int"}})
	if err := live.Insert(Row{expr.Int(1)}); err != nil {
		t.Fatal(err)
	}

	staged, _ := NewStagingTable("fresh", []Column{{Name: "y", Type: "string"}})
	if err := staged.Insert(Row{expr.Str("a")}); err != nil {
		t.Fatal(err)
	}
	delta, _ := NewStagingTable("live", []Column{{Name: "x", Type: "int"}})
	if err := delta.Insert(Row{expr.Int(2)}); err != nil {
		t.Fatal(err)
	}
	v := db.Version()
	if err := db.CommitRun([]*Table{staged}, []AppendDelta{{Target: live, Delta: delta}}); err != nil {
		t.Fatal(err)
	}
	if db.Version() != v+1 {
		t.Fatalf("version %d, want %d", db.Version(), v+1)
	}
	if live.NumRows() != 2 {
		t.Fatalf("append not merged: %d rows", live.NumRows())
	}

	re := openDisk(t, dir)
	reLive, _ := re.Table("live")
	reFresh, ok := re.Table("fresh")
	if !ok {
		t.Fatal("published table lost on reopen")
	}
	assertTableEqual(t, reLive, live)
	assertTableEqual(t, reFresh, staged)
	if re.Version() != v+1 {
		t.Fatalf("reopened version %d, want %d", re.Version(), v+1)
	}
}

// TestDiskSnapshotSurvivesRepublishAndGC proves a snapshot keeps
// reading its version after a republish deletes the old segments.
func TestDiskSnapshotSurvivesRepublishAndGC(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, _ := db.CreateTable("t", mixedCols)
	fillMixed(t, tbl, 2000)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	// Republish with different rows: old segments become unreferenced
	// and are unlinked by the commit's GC.
	staged, _ := NewStagingTable("t", mixedCols)
	if err := staged.Insert(mixedRow(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Publish(staged); err != nil {
		t.Fatal(err)
	}
	view, _ := snap.Table("t")
	if view.NumRows() != 2000 {
		t.Fatalf("snapshot sees %d rows", view.NumRows())
	}
	for i, r := range view.ReadBatch(0, 2000) {
		if !reflect.DeepEqual(r, Row(mixedRow(i))) {
			t.Fatalf("snapshot row %d differs after republish GC", i)
		}
	}
}

func TestDiskDropAndTruncatePersist(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	a, _ := db.CreateTable("a", mixedCols)
	fillMixed(t, a, 100)
	b, _ := db.CreateTable("b", mixedCols)
	fillMixed(t, b, 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	b.Truncate()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re := openDisk(t, dir)
	if _, ok := re.Table("a"); ok {
		t.Fatal("dropped table resurrected")
	}
	rb, ok := re.Table("b")
	if !ok || rb.NumRows() != 0 {
		t.Fatalf("truncate not persisted: ok=%v rows=%d", ok, rb.NumRows())
	}
	// The dropped table's segments must be gone from disk.
	entries, _ := os.ReadDir(dir)
	var segs int
	for _, e := range entries {
		if _, ok := mf.SegmentID(e.Name()); ok {
			segs++
		}
	}
	if segs != 0 {
		t.Fatalf("%d segment files remain after drop+truncate", segs)
	}
}

// TestAttachForeignPagerTableIsMaterialized: attaching a frozen view
// whose pager belongs to ANOTHER store's directory must copy the rows
// into local segments — a manifest naming foreign files would make
// the database unrecoverable (or, on a name collision, silently read
// the wrong bytes).
func TestAttachForeignPagerTableIsMaterialized(t *testing.T) {
	db1 := openDisk(t, t.TempDir())
	src, err := db1.CreateTable("src", mixedCols)
	if err != nil {
		t.Fatal(err)
	}
	fillMixed(t, src, 1500)
	if err := db1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := db1.Snapshot("src")
	if err != nil {
		t.Fatal(err)
	}
	view, _ := snap.Table("src")

	dir2 := t.TempDir()
	db2 := openDisk(t, dir2)
	if err := db2.Attach(view.Freeze()); err != nil {
		t.Fatal(err)
	}
	// The commit must have produced LOCAL segments for dir2.
	if got := countSegs(t, dir2); got == 0 {
		t.Fatal("attach committed no local segments for the foreign-backed table")
	}
	// Reopen dir2 cold: the attached table must be fully recoverable.
	re := openDisk(t, dir2)
	got, ok := re.Table("src")
	if !ok {
		t.Fatal("attached table lost on reopen")
	}
	assertTableEqual(t, got, src)
}

// TestRepublishPurgesDeadSegmentPages: after a republish
// garbage-collects old segments, their decoded pages must leave the
// buffer pool — cached entries pin the dead segments' open file
// descriptors, and under the byte budget nothing else would ever
// evict them.
func TestRepublishPurgesDeadSegmentPages(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, _ := db.CreateTable("t", mixedCols)
	fillMixed(t, tbl, 2000)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Populate the pool and note the now-live segment names.
	tbl.ReadBatch(0, 2000)
	tbl.mu.RLock()
	old := map[string]bool{}
	for _, s := range tbl.pg.segs {
		old[s.name] = true
	}
	tbl.mu.RUnlock()
	if len(old) == 0 {
		t.Fatal("setup: no segments")
	}

	staged, _ := NewStagingTable("t", mixedCols)
	if err := staged.Insert(mixedRow(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Publish(staged); err != nil {
		t.Fatal(err)
	}

	c := db.store.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if old[k.seg.name] {
			t.Fatalf("dead segment %s still has cached pages (pins its fd)", k.seg.name)
		}
	}
}

func TestDiskManifestIsCommitPoint(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, _ := db.CreateTable("t", mixedCols)
	fillMixed(t, tbl, 10)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestTmp)); !os.IsNotExist(err) {
		t.Fatalf("manifest.tmp left behind: %v", err)
	}
}
