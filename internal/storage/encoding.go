package storage

// Per-chunk compressed encodings for format-2 pages (see page.go for
// the page frame and docs/ARCHITECTURE.md for the spec). Each column
// chunk of a page is encoded independently, picked by a single stats
// pass over the chunk's values at write time:
//
//	encRaw      presence bitmap + raw values (the format-1 body)
//	encDict     dictionary: distinct values once + bit-packed codes
//	            (string and int columns)
//	encRLE      run-length: exact-equality runs of values or NULLs
//	encBitPack  frame-of-reference bit-packing (int columns): min as
//	            the base, per-value deltas at the narrowest width
//
// The pass also derives the page's zone map: per-column null count
// and min/max bounds (by expr.Value.Compare, the same ordering the
// filter evaluator uses, so pruning is conservative by construction).
// Bounds are withheld for columns whose chunk contains a non-finite
// float — Compare treats NaN as equal to everything, so no bound
// excludes it (and NaN/Inf would not survive the JSON manifest) — or
// an over-long string (manifest bloat).
//
// Every encoding round-trips values bit-exactly: floats compare and
// deduplicate by their IEEE-754 bit pattern (NaN payloads and -0
// survive), strings by content. Decoding therefore reproduces the
// stored expr.Values byte-identically, preserving the disk backend's
// byte-identity oracle against the in-memory backend.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"quarry/internal/expr"
)

// Chunk encoding tags (the first body byte of a format-2 chunk).
const (
	encRaw     = 0
	encDict    = 1
	encRLE     = 2
	encBitPack = 3
)

// dictMaxCard caps the distinct values tracked per chunk; past it the
// chunk is not a dictionary candidate (the stats pass stops counting).
const dictMaxCard = 4096

// zoneMaxStr is the longest string stored as a zone bound; chunks
// holding longer strings get no bounds (the manifest would bloat).
const zoneMaxStr = 128

// zone is one column's zone-map entry for one page: how many of the
// page's rows are NULL in this column, and — when hasBounds — the
// min/max of the non-NULL values under expr.Value.Compare.
type zone struct {
	nulls     int
	hasBounds bool
	min, max  expr.Value
}

// valKey is a map key distinguishing values bit-exactly within one
// column (all non-NULL values of a column share its declared kind).
type valKey struct {
	bits uint64
	s    string
}

func keyOf(v expr.Value) valKey {
	switch v.Kind() {
	case expr.KindInt:
		return valKey{bits: uint64(v.AsInt())}
	case expr.KindFloat:
		f, _ := v.AsFloat()
		return valKey{bits: math.Float64bits(f)}
	case expr.KindBool:
		if v.AsBool() {
			return valKey{bits: 1}
		}
		return valKey{}
	case expr.KindString:
		return valKey{s: v.AsString()}
	}
	return valKey{}
}

// valIdentical reports bit-exact equality (the run-length equality:
// NaNs with equal payloads are identical, -0 differs from +0).
func valIdentical(a, b expr.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case expr.KindNull:
		return true
	case expr.KindInt:
		return a.AsInt() == b.AsInt()
	case expr.KindFloat:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return math.Float64bits(af) == math.Float64bits(bf)
	case expr.KindBool:
		return a.AsBool() == b.AsBool()
	case expr.KindString:
		return a.AsString() == b.AsString()
	}
	return false
}

// rawValSize is the encoded size of one non-NULL value.
func rawValSize(v expr.Value) int {
	switch v.Kind() {
	case expr.KindInt, expr.KindFloat:
		return 8
	case expr.KindBool:
		return 1
	case expr.KindString:
		return 4 + len(v.AsString())
	}
	return 0
}

// chunkStats is the single-pass analysis of one column chunk: enough
// to size every candidate encoding, drive the chosen encoder, and
// fill the page's zone-map entry.
type chunkStats struct {
	n        int
	nulls    int
	rawBytes int // value bytes of the present rows
	runBytes int // exact size of the encRLE body

	dictable  bool
	dictBytes int              // value bytes of the distinct values
	codes     map[valKey]int32 // value → dictionary code
	dict      []expr.Value     // code → value, first-seen order

	intMin, intMax int64 // int columns, present rows only

	zone zone
}

// analyzeChunk scans rows[first:first+n] at column ci in one pass.
func analyzeChunk(rows []Row, ci int, typ string) *chunkStats {
	st := &chunkStats{n: len(rows)}
	st.dictable = typ == "string" || typ == "int"
	if st.dictable {
		st.codes = make(map[valKey]int32)
	}
	boundsOK := true
	var prev expr.Value
	for ri, r := range rows {
		v := r[ci]
		if ri == 0 || !valIdentical(v, prev) {
			st.runBytes += 4 + 1
			if !v.IsNull() {
				st.runBytes += rawValSize(v)
			}
		}
		prev = v
		if v.IsNull() {
			st.nulls++
			continue
		}
		vs := rawValSize(v)
		st.rawBytes += vs
		if st.dictable {
			k := keyOf(v)
			if _, ok := st.codes[k]; !ok {
				if len(st.dict) >= dictMaxCard {
					st.dictable = false
					st.codes = nil
					st.dict = nil
				} else {
					st.codes[k] = int32(len(st.dict))
					st.dict = append(st.dict, v)
					st.dictBytes += vs
				}
			}
		}
		switch v.Kind() {
		case expr.KindInt:
			i := v.AsInt()
			if st.rawBytes == vs { // first present value
				st.intMin, st.intMax = i, i
			} else {
				if i < st.intMin {
					st.intMin = i
				}
				if i > st.intMax {
					st.intMax = i
				}
			}
		case expr.KindFloat:
			f, _ := v.AsFloat()
			if math.IsNaN(f) || math.IsInf(f, 0) {
				boundsOK = false
			}
		case expr.KindString:
			if len(v.AsString()) > zoneMaxStr {
				boundsOK = false
			}
		}
		if boundsOK {
			if st.zone.min.IsNull() && st.rawBytes == vs {
				st.zone.min, st.zone.max = v, v
			} else {
				if c, err := v.Compare(st.zone.min); err == nil && c < 0 {
					st.zone.min = v
				}
				if c, err := v.Compare(st.zone.max); err == nil && c > 0 {
					st.zone.max = v
				}
			}
		}
	}
	st.zone.nulls = st.nulls
	st.zone.hasBounds = boundsOK && st.nulls < st.n && st.n > 0
	if !st.zone.hasBounds {
		st.zone.min, st.zone.max = expr.Value{}, expr.Value{}
	}
	return st
}

// packedLen is the byte length of count values bit-packed at width.
func packedLen(count, width int) int {
	return (count*width + 7) / 8
}

// bitsFor is the width needed to represent codes 0..n-1.
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// chooseEncoding picks the smallest candidate body for the chunk,
// preferring (on ties) the cheapest to decode: raw, then bit-pack,
// then dictionary, then run-length.
func chooseEncoding(typ string, st *chunkStats) int {
	bm := (st.n + 7) / 8
	present := st.n - st.nulls
	best, size := encRaw, bm+st.rawBytes
	if typ == "int" && present > 0 {
		width := bits.Len64(uint64(st.intMax) - uint64(st.intMin))
		if s := 8 + 1 + bm + packedLen(present, width); s < size {
			best, size = encBitPack, s
		}
	}
	if st.dictable && len(st.dict) > 0 {
		width := bitsFor(len(st.dict))
		if s := 4 + st.dictBytes + 1 + bm + packedLen(present, width); s < size {
			best, size = encDict, s
		}
	}
	if st.runBytes < size {
		best = encRLE
	}
	return best
}

// ---- bit packing (LSB-first little-endian bit stream) ----

func lowMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// appendPacked appends vals at the given bit width.
func appendPacked(buf []byte, vals []uint64, width int) []byte {
	if width <= 0 {
		return buf
	}
	var acc uint64
	nb := 0
	for _, v := range vals {
		rem := width
		for rem > 0 {
			take := rem
			if take > 64-nb {
				take = 64 - nb
			}
			acc |= (v & lowMask(take)) << nb
			v >>= uint(take)
			nb += take
			rem -= take
			for nb >= 8 {
				buf = append(buf, byte(acc))
				acc >>= 8
				nb -= 8
			}
		}
	}
	if nb > 0 {
		buf = append(buf, byte(acc))
	}
	return buf
}

// bitReader consumes a packed stream produced by appendPacked.
type bitReader struct {
	buf []byte
	pos int
	acc uint64 // < 8 valid bits
	nb  int
}

func (r *bitReader) read(width int) (uint64, bool) {
	var v uint64
	got := 0
	if r.nb > 0 {
		take := width
		if take > r.nb {
			take = r.nb
		}
		v = r.acc & lowMask(take)
		r.acc >>= uint(take)
		r.nb -= take
		got = take
	}
	for got < width {
		if r.pos >= len(r.buf) {
			return 0, false
		}
		b := uint64(r.buf[r.pos])
		r.pos++
		take := width - got
		if take >= 8 {
			v |= b << uint(got)
			got += 8
		} else {
			v |= (b & lowMask(take)) << uint(got)
			r.acc = b >> uint(take)
			r.nb = 8 - take
			got = width
		}
	}
	return v, true
}

// ---- shared raw-value helpers ----

// appendVal appends one non-NULL value's raw encoding.
func appendVal(buf []byte, v expr.Value) []byte {
	var u64 [8]byte
	switch v.Kind() {
	case expr.KindInt:
		binary.LittleEndian.PutUint64(u64[:], uint64(v.AsInt()))
		buf = append(buf, u64[:]...)
	case expr.KindFloat:
		f, _ := v.AsFloat()
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(f))
		buf = append(buf, u64[:]...)
	case expr.KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		buf = append(buf, b)
	case expr.KindString:
		s := v.AsString()
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(len(s)))
		buf = append(buf, u32[:]...)
		buf = append(buf, s...)
	}
	return buf
}

// readVal decodes one raw value of the column type at body[pos].
func readVal(body []byte, pos int, typ string) (expr.Value, int, error) {
	switch typ {
	case "int":
		if pos+8 > len(body) {
			return expr.Value{}, 0, fmt.Errorf("int value truncated")
		}
		return expr.Int(int64(binary.LittleEndian.Uint64(body[pos:]))), pos + 8, nil
	case "float":
		if pos+8 > len(body) {
			return expr.Value{}, 0, fmt.Errorf("float value truncated")
		}
		return expr.Float(math.Float64frombits(binary.LittleEndian.Uint64(body[pos:]))), pos + 8, nil
	case "bool":
		if pos+1 > len(body) {
			return expr.Value{}, 0, fmt.Errorf("bool value truncated")
		}
		return expr.Bool(body[pos] != 0), pos + 1, nil
	case "string":
		if pos+4 > len(body) {
			return expr.Value{}, 0, fmt.Errorf("string length truncated")
		}
		sl := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if sl < 0 || pos+sl > len(body) {
			return expr.Value{}, 0, fmt.Errorf("string value truncated")
		}
		return expr.Str(string(body[pos : pos+sl])), pos + sl, nil
	}
	return expr.Value{}, 0, fmt.Errorf("unknown column type %q", typ)
}

// appendBitmap appends the presence bitmap of rows at column ci.
func appendBitmap(buf []byte, rows []Row, ci int) []byte {
	at := len(buf)
	buf = append(buf, make([]byte, (len(rows)+7)/8)...)
	for ri, r := range rows {
		if !r[ci].IsNull() {
			buf[at+ri/8] |= 1 << (ri % 8)
		}
	}
	return buf
}

// ---- chunk body encoders ----

// appendRawBody writes the encRaw body: bitmap + present values (the
// format-1 chunk body, bit for bit).
func appendRawBody(buf []byte, rows []Row, ci int) []byte {
	buf = appendBitmap(buf, rows, ci)
	for _, r := range rows {
		if !r[ci].IsNull() {
			buf = appendVal(buf, r[ci])
		}
	}
	return buf
}

// appendDictBody writes u32 ndict, the dictionary values, u8 width,
// bitmap, and the present rows' codes bit-packed.
func appendDictBody(buf []byte, rows []Row, ci int, st *chunkStats) []byte {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(st.dict)))
	buf = append(buf, u32[:]...)
	for _, v := range st.dict {
		buf = appendVal(buf, v)
	}
	width := bitsFor(len(st.dict))
	buf = append(buf, byte(width))
	buf = appendBitmap(buf, rows, ci)
	codes := make([]uint64, 0, st.n-st.nulls)
	for _, r := range rows {
		if !r[ci].IsNull() {
			codes = append(codes, uint64(st.codes[keyOf(r[ci])]))
		}
	}
	return appendPacked(buf, codes, width)
}

// appendRLEBody writes runs of bit-identical values: u32 count,
// u8 flag (1 = value follows, 0 = NULL run), [value].
func appendRLEBody(buf []byte, rows []Row, ci int) []byte {
	var u32 [4]byte
	flush := func(v expr.Value, count int) {
		binary.LittleEndian.PutUint32(u32[:], uint32(count))
		buf = append(buf, u32[:]...)
		if v.IsNull() {
			buf = append(buf, 0)
			return
		}
		buf = append(buf, 1)
		buf = appendVal(buf, v)
	}
	var run expr.Value
	count := 0
	for _, r := range rows {
		v := r[ci]
		if count > 0 && valIdentical(v, run) {
			count++
			continue
		}
		if count > 0 {
			flush(run, count)
		}
		run, count = v, 1
	}
	if count > 0 {
		flush(run, count)
	}
	return buf
}

// appendBitPackBody writes i64 base (the chunk minimum), u8 width,
// bitmap, and the present rows' deltas bit-packed.
func appendBitPackBody(buf []byte, rows []Row, ci int, st *chunkStats) []byte {
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(st.intMin))
	buf = append(buf, u64[:]...)
	width := bits.Len64(uint64(st.intMax) - uint64(st.intMin))
	buf = append(buf, byte(width))
	buf = appendBitmap(buf, rows, ci)
	deltas := make([]uint64, 0, st.n-st.nulls)
	for _, r := range rows {
		if !r[ci].IsNull() {
			deltas = append(deltas, uint64(r[ci].AsInt())-uint64(st.intMin))
		}
	}
	return appendPacked(buf, deltas, width)
}

// ---- chunk body decoders (fill rows[ri][ci] for ri in [0,n)) ----

// decodeBitmap validates and returns the leading presence bitmap.
func decodeBitmap(body []byte, n int) ([]byte, []byte, error) {
	bm := (n + 7) / 8
	if len(body) < bm {
		return nil, nil, fmt.Errorf("bitmap truncated")
	}
	return body[:bm], body[bm:], nil
}

func decodeRawBody(body []byte, n int, typ string, rows []Row, ci int) error {
	bitmap, rest, err := decodeBitmap(body, n)
	if err != nil {
		return err
	}
	pos := 0
	for ri := 0; ri < n; ri++ {
		if bitmap[ri/8]&(1<<(ri%8)) == 0 {
			continue // NULL: the zero Value
		}
		var v expr.Value
		v, pos, err = readVal(rest, pos, typ)
		if err != nil {
			return err
		}
		rows[ri][ci] = v
	}
	return nil
}

func decodeDictBody(body []byte, n int, typ string, rows []Row, ci int) error {
	if len(body) < 4 {
		return fmt.Errorf("dictionary header truncated")
	}
	ndict := int(binary.LittleEndian.Uint32(body))
	if ndict < 0 || ndict > dictMaxCard {
		return fmt.Errorf("dictionary cardinality %d out of range", ndict)
	}
	pos := 4
	dict := make([]expr.Value, ndict)
	var err error
	for i := range dict {
		dict[i], pos, err = readVal(body, pos, typ)
		if err != nil {
			return err
		}
	}
	if pos >= len(body) {
		return fmt.Errorf("dictionary width truncated")
	}
	width := int(body[pos])
	pos++
	bitmap, rest, err := decodeBitmap(body[pos:], n)
	if err != nil {
		return err
	}
	br := &bitReader{buf: rest}
	for ri := 0; ri < n; ri++ {
		if bitmap[ri/8]&(1<<(ri%8)) == 0 {
			continue
		}
		code := uint64(0)
		if width > 0 {
			var ok bool
			code, ok = br.read(width)
			if !ok {
				return fmt.Errorf("dictionary codes truncated")
			}
		}
		if code >= uint64(ndict) {
			return fmt.Errorf("dictionary code %d out of range", code)
		}
		rows[ri][ci] = dict[code]
	}
	return nil
}

func decodeRLEBody(body []byte, n int, typ string, rows []Row, ci int) error {
	pos, ri := 0, 0
	for ri < n {
		if pos+5 > len(body) {
			return fmt.Errorf("run header truncated")
		}
		count := int(binary.LittleEndian.Uint32(body[pos:]))
		flag := body[pos+4]
		pos += 5
		if count <= 0 || ri+count > n {
			return fmt.Errorf("run of %d rows overflows page", count)
		}
		if flag == 0 {
			ri += count // NULL run: the zero Value
			continue
		}
		v, np, err := readVal(body, pos, typ)
		if err != nil {
			return err
		}
		pos = np
		for k := 0; k < count; k++ {
			rows[ri][ci] = v
			ri++
		}
	}
	return nil
}

func decodeBitPackBody(body []byte, n int, typ string, rows []Row, ci int) error {
	if typ != "int" {
		return fmt.Errorf("bit-packed chunk on %s column", typ)
	}
	if len(body) < 9 {
		return fmt.Errorf("bit-pack header truncated")
	}
	base := int64(binary.LittleEndian.Uint64(body))
	width := int(body[8])
	if width > 64 {
		return fmt.Errorf("bit width %d out of range", width)
	}
	bitmap, rest, err := decodeBitmap(body[9:], n)
	if err != nil {
		return err
	}
	br := &bitReader{buf: rest}
	for ri := 0; ri < n; ri++ {
		if bitmap[ri/8]&(1<<(ri%8)) == 0 {
			continue
		}
		delta := uint64(0)
		if width > 0 {
			var ok bool
			delta, ok = br.read(width)
			if !ok {
				return fmt.Errorf("bit-packed values truncated")
			}
		}
		rows[ri][ci] = expr.Int(int64(uint64(base) + delta))
	}
	return nil
}
