package storage

// Quick-check suites for the format-2 page encodings and zone-map
// pruning: randomized column data of every type and adversarial shape
// must decode bit-identical through whichever encoding the stats pass
// picks (and through each encoding when forced), and a pruned cursor
// must never drop a row the full scan's filter would keep.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"quarry/internal/expr"
)

// rowsIdentical compares row sets bit-exactly (reflect.DeepEqual
// would call NaN ≠ NaN and -0 == +0; the codec's contract is stricter).
func rowsIdentical(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !valIdentical(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// colGen produces the i-th value of a synthetic column, or NULL.
type colGen func(rng *rand.Rand, i int) expr.Value

// genPatterns enumerates the adversarial value shapes per type: long
// runs (RLE bait), low cardinality (dict bait), narrow int ranges
// (bit-pack bait), high cardinality (raw fallback), plus edge values
// the packers must not mangle.
func genPatterns(typ string) map[string]colGen {
	switch typ {
	case "int":
		return map[string]colGen{
			"constant":  func(rng *rand.Rand, i int) expr.Value { return expr.Int(42) },
			"runs":      func(rng *rand.Rand, i int) expr.Value { return expr.Int(int64(i / 97)) },
			"narrow":    func(rng *rand.Rand, i int) expr.Value { return expr.Int(rng.Int63n(100) - 50) },
			"wide":      func(rng *rand.Rand, i int) expr.Value { return expr.Int(rng.Int63() - rng.Int63()) },
			"ascending": func(rng *rand.Rand, i int) expr.Value { return expr.Int(int64(i)) },
			"extremes": func(rng *rand.Rand, i int) expr.Value {
				vals := []int64{math.MinInt64, math.MaxInt64, -1, 0, 1, math.MinInt64 + 1}
				return expr.Int(vals[rng.Intn(len(vals))])
			},
		}
	case "float":
		return map[string]colGen{
			"constant": func(rng *rand.Rand, i int) expr.Value { return expr.Float(3.5) },
			"runs":     func(rng *rand.Rand, i int) expr.Value { return expr.Float(float64(i/53) * 0.25) },
			"random":   func(rng *rand.Rand, i int) expr.Value { return expr.Float(rng.NormFloat64() * 1e6) },
			"special": func(rng *rand.Rand, i int) expr.Value {
				vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1),
					math.Copysign(0, -1), 0, math.MaxFloat64, math.SmallestNonzeroFloat64}
				return expr.Float(vals[rng.Intn(len(vals))])
			},
		}
	case "string":
		return map[string]colGen{
			"constant": func(rng *rand.Rand, i int) expr.Value { return expr.Str("same") },
			"lowcard": func(rng *rand.Rand, i int) expr.Value {
				return expr.Str(fmt.Sprintf("tag-%d", rng.Intn(7)))
			},
			"highcard": func(rng *rand.Rand, i int) expr.Value {
				return expr.Str(fmt.Sprintf("uniq-%d-%d", i, rng.Int63()))
			},
			"runs": func(rng *rand.Rand, i int) expr.Value { return expr.Str(strings.Repeat("r", i/61%5)) },
			"empty+long": func(rng *rand.Rand, i int) expr.Value {
				if rng.Intn(2) == 0 {
					return expr.Str("")
				}
				return expr.Str(strings.Repeat("長", 200+rng.Intn(100)))
			},
		}
	case "bool":
		return map[string]colGen{
			"constant":    func(rng *rand.Rand, i int) expr.Value { return expr.Bool(true) },
			"alternating": func(rng *rand.Rand, i int) expr.Value { return expr.Bool(i%2 == 0) },
			"random":      func(rng *rand.Rand, i int) expr.Value { return expr.Bool(rng.Intn(2) == 0) },
		}
	}
	return nil
}

// nullPatterns enumerates null placements: none, all, alternating,
// sparse random, and a leading all-null prefix.
var nullPatterns = map[string]func(rng *rand.Rand, i, n int) bool{
	"none":        func(rng *rand.Rand, i, n int) bool { return false },
	"all":         func(rng *rand.Rand, i, n int) bool { return true },
	"alternating": func(rng *rand.Rand, i, n int) bool { return i%2 == 1 },
	"sparse":      func(rng *rand.Rand, i, n int) bool { return rng.Intn(17) == 0 },
	"prefix":      func(rng *rand.Rand, i, n int) bool { return i < n/3 },
}

func TestEncodingQuickCheck(t *testing.T) {
	for _, typ := range []string{"int", "float", "string", "bool"} {
		for pat, gen := range genPatterns(typ) {
			for nulls, isNull := range nullPatterns {
				t.Run(typ+"/"+pat+"/nulls="+nulls, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(len(typ)*1000 + len(pat)*31 + len(nulls))))
					for _, n := range []int{0, 1, 2, 63, 64, 65, 1000} {
						cols := []Column{{Name: "c", Type: typ}}
						rows := make([]Row, n)
						for i := range rows {
							if isNull(rng, i, n) {
								rows[i] = Row{expr.Null()}
							} else {
								rows[i] = Row{gen(rng, i)}
							}
						}
						ep := encodePage(cols, rows)
						if len(ep.buf)%pageBlock != 0 {
							t.Fatalf("n=%d: page size %d not a pageBlock multiple", n, len(ep.buf))
						}
						got, err := decodePage(manifestFormatV2, cols, ep.buf)
						if err != nil {
							t.Fatalf("n=%d: decode: %v", n, err)
						}
						if !rowsIdentical(got, rows) {
							t.Fatalf("n=%d: decoded rows differ bit-exactly from input", n)
						}
					}
				})
			}
		}
	}
}

// chunkTag digs the encoding tag of the single chunk out of a
// one-column v2 page: u32 rowCount, u32 chunkLen, then the tag byte.
func chunkTag(buf []byte) byte { return buf[8] }

// TestEncodingSelection pins the stats pass to the intended encoding
// per canonical data shape and round-trips each, so every encoder and
// decoder pair is exercised regardless of what selection would pick
// for the quick-check corpora.
func TestEncodingSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		typ  string
		want byte
		gen  func(i int) expr.Value
	}{
		{"rle-runs", "int", encRLE, func(i int) expr.Value { return expr.Int(int64(i / 200)) }},
		{"dict-lowcard-strings", "string", encDict,
			func(i int) expr.Value { return expr.Str(fmt.Sprintf("region-%02d", i%9)) }},
		{"bitpack-narrow-ints", "int", encBitPack,
			func(i int) expr.Value { return expr.Int(rng.Int63n(5000) - 2500) }},
		{"raw-highcard-strings", "string", encRaw,
			func(i int) expr.Value { return expr.Str(fmt.Sprintf("unique-value-%d-%d", i, rng.Int63())) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cols := []Column{{Name: "c", Type: tc.typ}}
			rows := make([]Row, 1000)
			for i := range rows {
				rows[i] = Row{tc.gen(i)}
			}
			ep := encodePage(cols, rows)
			if got := chunkTag(ep.buf); got != tc.want {
				t.Fatalf("chose encoding %d, want %d", got, tc.want)
			}
			got, err := decodePage(manifestFormatV2, cols, ep.buf)
			if err != nil {
				t.Fatal(err)
			}
			if !rowsIdentical(got, rows) {
				t.Fatal("round-trip mismatch")
			}
		})
	}
}

// TestForceRawDisablesCompression pins the benchmark knob: with
// TestingForceRaw set, every chunk encodes raw even on dict-friendly
// data.
func TestForceRawDisablesCompression(t *testing.T) {
	TestingForceRaw = true
	defer func() { TestingForceRaw = false }()
	cols := []Column{{Name: "c", Type: "string"}}
	rows := make([]Row, 500)
	for i := range rows {
		rows[i] = Row{expr.Str("constant")}
	}
	ep := encodePage(cols, rows)
	if got := chunkTag(ep.buf); got != encRaw {
		t.Fatalf("forced-raw page used encoding %d", got)
	}
	got, err := decodePage(manifestFormatV2, cols, ep.buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsIdentical(got, rows) {
		t.Fatal("round-trip mismatch")
	}
}

// zoneCols is a fact-like layout whose leading column arrives
// clustered (ascending), giving zone maps real pruning power.
var zoneCols = []Column{
	{Name: "day", Type: "int"},
	{Name: "name", Type: "string"},
	{Name: "v", Type: "float"},
}

func zoneRow(rng *rand.Rand, i int) Row {
	if rng.Intn(41) == 0 {
		return Row{expr.Null(), expr.Null(), expr.Null()}
	}
	return Row{
		expr.Int(int64(i / 500)), // clustered: each page spans few days
		expr.Str(fmt.Sprintf("n-%03d·%s", rng.Intn(30), strings.Repeat("x", 20))),
		expr.Float(rng.Float64() * 100),
	}
}

// satisfies mirrors the evaluator's comparison semantics for the
// predicate shapes the property test pushes down (NULL never
// qualifies; "="/"!=" via Equal, orderings via Compare on matching
// kinds).
func satisfies(v expr.Value, op string, lit expr.Value) bool {
	if v.IsNull() || lit.IsNull() {
		return false
	}
	switch op {
	case "=":
		return v.Equal(lit)
	case "!=":
		return !v.Equal(lit)
	}
	c, err := v.Compare(lit)
	if err != nil {
		return false
	}
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// collect drains a cursor.
func collect(c *Cursor) []Row {
	var out []Row
	for {
		b := c.Next(1024)
		if b == nil {
			return out
		}
		out = append(out, b...)
	}
}

// TestZonePruneNeverDropsQualifyingRow is the pruning safety property:
// for a grab bag of pushed-down predicates over clustered, nullable,
// multi-page data, the pruned cursor must return (a) an in-order
// subset of the full scan and (b) every row the predicate keeps. It
// also asserts the clustered predicate actually skips pages — a
// vacuous prune would pass (a)+(b) trivially.
func TestZonePruneNeverDropsQualifyingRow(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dir := t.TempDir()
	db := openDisk(t, dir)
	tbl, err := db.CreateTable("t", zoneCols)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = zoneRow(rng, i)
	}
	if err := tbl.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	view, _ := snap.Table("t")

	preds := []PrunePredicate{
		{Col: "day", Op: ">=", Val: expr.Int(int64(n/500) - 3)}, // selective, clustered
		{Col: "day", Op: "<", Val: expr.Int(2)},
		{Col: "day", Op: "=", Val: expr.Int(7)},
		{Col: "day", Op: "!=", Val: expr.Int(0)},
		{Col: "day", Op: "<=", Val: expr.Int(-1)},              // empty result
		{Col: "day", Op: ">", Val: expr.Float(3.5)},            // cross-kind numeric ordering
		{Col: "name", Op: "=", Val: expr.Str("no-such-name")},  // string equality
		{Col: "name", Op: ">=", Val: expr.Str("n-029")},        // string ordering
		{Col: "day", Op: "=", Val: expr.Str("kind-mismatch")},  // Equal false everywhere
		{Col: "day", Op: "!=", Val: expr.Str("kind-mismatch")}, // Equal false ⇒ all rows qualify
		{Col: "v", Op: "=", Val: expr.Null()},                  // NULL literal: nothing qualifies
		{Col: "nope", Op: "=", Val: expr.Int(1)},               // unknown column: ignored
	}
	for ri := 0; ri < 40; ri++ { // plus random ordering predicates
		ops := []string{"<", "<=", ">", ">=", "=", "!="}
		preds = append(preds, PrunePredicate{
			Col: "day", Op: ops[rng.Intn(len(ops))], Val: expr.Int(rng.Int63n(n/500+4) - 2)})
	}

	full := collect(view.Cursor(nil))
	if len(full) != n {
		t.Fatalf("full scan returned %d rows, want %d", len(full), n)
	}
	ci, _ := view.ColumnIndex("day")
	for pi, p := range preds {
		cur := view.Cursor([]PrunePredicate{p})
		pruned := collect(cur)
		// (a) in-order subset of the full scan.
		fi := 0
		for _, r := range pruned {
			for fi < len(full) && !rowsIdentical([]Row{full[fi]}, []Row{r}) {
				fi++
			}
			if fi == len(full) {
				t.Fatalf("pred %d (%s %s %s): pruned output is not an in-order subset",
					pi, p.Col, p.Op, p.Val)
			}
			fi++
		}
		// (b) no qualifying row dropped.
		pci := ci
		if p.Col != "day" {
			pci, _ = view.ColumnIndex(p.Col)
		}
		want, got := 0, 0
		for _, r := range full {
			if p.Col != "nope" && satisfies(r[pci], p.Op, p.Val) {
				want++
			}
		}
		for _, r := range pruned {
			if p.Col != "nope" && satisfies(r[pci], p.Op, p.Val) {
				got++
			}
		}
		if p.Col == "nope" {
			if len(pruned) != n {
				t.Fatalf("unknown-column predicate pruned rows: %d of %d", len(pruned), n)
			}
			continue
		}
		if got != want {
			t.Fatalf("pred %d (%s %s %s): pruned scan keeps %d qualifying rows, full scan %d",
				pi, p.Col, p.Op, p.Val, got, want)
		}
	}

	// The selective clustered predicate must genuinely skip pages.
	sel := view.Cursor([]PrunePredicate{preds[0]})
	collect(sel)
	read, skipped := sel.Stats()
	if skipped == 0 || read == 0 {
		t.Fatalf("clustered selective predicate skipped %d pages (read %d); pruning inert", skipped, read)
	}

	// With pruning globally off the same cursor scans everything.
	prev := SetZoneMapPruning(false)
	defer SetZoneMapPruning(prev)
	off := view.Cursor([]PrunePredicate{preds[0]})
	if got := collect(off); len(got) != n {
		t.Fatalf("pruning disabled but cursor returned %d of %d rows", len(got), n)
	}
	if _, skipped := off.Stats(); skipped != 0 {
		t.Fatalf("pruning disabled but %d pages skipped", skipped)
	}
}

// TestCompressionRatio asserts the acceptance floor on warehouse-like
// data: format-2 encodings shrink the on-disk footprint by ≥30%
// against the raw baseline (same rows, TestingForceRaw).
func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols := []Column{
		{Name: "orderkey", Type: "int"},
		{Name: "qty", Type: "int"},
		{Name: "price", Type: "float"},
		{Name: "flag", Type: "string"},
		{Name: "status", Type: "string"},
		{Name: "shipmode", Type: "string"},
		{Name: "comment", Type: "string"},
	}
	flags := []string{"A", "N", "R"}
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	rows := make([]Row, 30000)
	for i := range rows {
		rows[i] = Row{
			expr.Int(int64(i / 4)), // clustered order keys: RLE/bit-pack fodder
			expr.Int(rng.Int63n(50) + 1),
			expr.Float(float64(rng.Int63n(10000000)) / 100),
			expr.Str(flags[rng.Intn(len(flags))]),
			expr.Str(flags[rng.Intn(2)]),
			expr.Str(modes[rng.Intn(len(modes))]),
			expr.Str(fmt.Sprintf("comment %d about the order", rng.Intn(500))),
		}
	}
	write := func(dir string) int64 {
		db := openDisk(t, dir)
		tbl, err := db.CreateTable("lineitem", cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.InsertAll(rows); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		st := db.DiskStats()["lineitem"]
		if st.Segments == 0 || st.Bytes == 0 {
			t.Fatalf("DiskStats empty: %+v", st)
		}
		return st.Bytes
	}
	v2 := write(t.TempDir())
	TestingForceRaw = true
	defer func() { TestingForceRaw = false }()
	raw := write(t.TempDir())
	if ratio := 1 - float64(v2)/float64(raw); ratio < 0.30 {
		t.Fatalf("compression saves only %.1f%% (%d raw → %d encoded); acceptance floor is 30%%",
			ratio*100, raw, v2)
	}
}
