package storage

// Format-negotiation suite: this build writes format 2 but must keep
// reading format-1 directories byte-identically, reject formats it
// does not know with a clean error, and decode mixed catalogs (legacy
// segments retained beside fresh appends) per segment.

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeV1Store hand-builds a format-1 directory — one table "t" of n
// mixedRow rows in a single fixed-64KiB raw page — exactly as the
// previous release laid it out, and returns the rows as the oracle.
func writeV1Store(t *testing.T, dir string, n int) []Row {
	t.Helper()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = mixedRow(i)
	}
	// v1 page: u32 rowCount, then per column u32 chunkLen + bare raw
	// body (presence bitmap + present values), zero-padded to pageSize.
	var buf []byte
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(n))
	buf = append(buf, u32[:]...)
	for ci := range mixedCols {
		at := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = appendRawBody(buf, rows, ci)
		binary.LittleEndian.PutUint32(buf[at:], uint32(len(buf)-at-4))
	}
	if len(buf) > pageSize {
		t.Fatalf("test page overflows a v1 page: %d bytes", len(buf))
	}
	buf = append(buf, make([]byte, pageSize-len(buf))...)
	segName := segPrefix + "00000000" + segSuffix
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	man := manifest{Format: manifestFormatV1, Version: 3, Tables: []manifestTable{{
		Name: "t", Columns: mixedCols,
		Segments: []manifestSegment{{File: segName, Rows: n,
			Pages: []manifestPage{{Off: 0, Size: pageSize, Rows: n}}}},
	}}}
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestV1ReadCompat: a legacy directory opens, reads byte-identically,
// and accepts a new append — whose commit writes a format-2 manifest
// tagging the retained legacy segment format 1 (the mixed catalog).
func TestV1ReadCompat(t *testing.T) {
	t.Setenv("QUARRY_COMPACT_SEGMENTS", "0")
	dir := t.TempDir()
	rows := writeV1Store(t, dir, 300)

	db := openDisk(t, dir)
	if db.Version() != 3 {
		t.Fatalf("version %d, want 3", db.Version())
	}
	tbl, ok := db.Table("t")
	if !ok {
		t.Fatal("table t missing from v1 store")
	}
	if !reflect.DeepEqual(tbl.Rows(), rows) {
		t.Fatal("v1 rows differ after open")
	}

	// Append through the modern commit path: the new manifest is
	// format 2 overall, the old segment stays format 1 on disk.
	appendMixed(t, db, 5000, 40)
	want := append(append([]Row{}, rows...), func() []Row {
		var r []Row
		for i := 0; i < 40; i++ {
			r = append(r, mixedRow(5000+i))
		}
		return r
	}()...)
	re := openDisk(t, dir)
	rt, _ := re.Table("t")
	if !reflect.DeepEqual(rt.Rows(), want) {
		t.Fatal("mixed v1+v2 catalog rows differ after reopen")
	}

	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.Format != manifestFormatV2 {
		t.Fatalf("post-append manifest format %d, want %d", man.Format, manifestFormatV2)
	}
	segs := man.Tables[0].Segments
	if len(segs) != 2 || segs[0].Format != manifestFormatV1 || segs[1].Format != manifestFormatV2 {
		t.Fatalf("mixed catalog not tagged per segment: %+v", segs)
	}
}

// TestUnknownFormatRejected: a manifest (or segment) from a future
// format must fail Open with an error naming the readable formats —
// not a decode panic halfway into a query.
func TestUnknownFormatRejected(t *testing.T) {
	t.Run("manifest", func(t *testing.T) {
		dir := t.TempDir()
		writeV1Store(t, dir, 10)
		mangle(t, dir, func(man *manifest) { man.Format = 3 })
		_, err := Open(dir)
		if err == nil {
			t.Fatal("Open accepted format 3")
		}
		if !strings.Contains(err.Error(), "format 3") {
			t.Fatalf("error %q does not name the offending format", err)
		}
	})
	t.Run("segment", func(t *testing.T) {
		dir := t.TempDir()
		writeV1Store(t, dir, 10)
		mangle(t, dir, func(man *manifest) {
			man.Format = manifestFormatV2
			man.Tables[0].Segments[0].Format = 9
		})
		if _, err := Open(dir); err == nil {
			t.Fatal("Open accepted a segment of format 9")
		}
	})
}

// mangle rewrites the committed manifest through f.
func mangle(t *testing.T, dir string, f func(*manifest)) {
	t.Helper()
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	f(&man)
	out, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}
