// Package manifest is the transport-agnostic half of the storage
// engine's commit/recovery protocol: the JSON catalog schema, the
// fsync+rename commit point, and the catalog diff that turns the
// protocol into a replication mechanism.
//
// A storage directory is fully described by one manifest.json naming
// immutable segment files. Because segments are never rewritten in
// place and the manifest rename is the single atomic commit point,
// shipping a catalog to another machine reduces to: fetch the
// segments the remote manifest names that the local one does not,
// then adopt the remote manifest bytes through the same commit point.
// Catch-up after downtime is just a bigger diff, and a crash mid-fetch
// recovers exactly like a crash mid-commit — unreferenced files are
// garbage, the committed manifest is the truth.
//
// The storage package layers the in-memory state (pagers, buffer
// pool, snapshots) on top of these primitives; internal/replication
// layers the transport on top. Neither side re-implements the commit
// point.
package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const (
	// FileName is the committed catalog; TmpName is its staging file,
	// renamed over FileName at the commit point.
	FileName = "manifest.json"
	TmpName  = "manifest.tmp"
	// FormatV1 is the legacy raw-page format (fixed 64 KiB pages,
	// untagged raw chunks, no zone maps); still readable. FormatV2 adds
	// per-chunk compressed encodings, 4 KiB page blocks and zone maps,
	// and is what every commit writes.
	FormatV1 = 1
	FormatV2 = 2
	// SegPrefix/SegSuffix frame segment file names: seg-NNNNNNNN.qseg.
	SegPrefix = "seg-"
	SegSuffix = ".qseg"
)

// Manifest is the whole truth about a storage directory: segment
// files carry no headers of their own.
type Manifest struct {
	Format  int     `json:"format"`
	Version uint64  `json:"version"`
	Tables  []Table `json:"tables"`
}

// Table is one table's committed state: column definitions and the
// ordered segment list whose concatenation is the table's rows.
type Table struct {
	Name     string    `json:"name"`
	Columns  []Column  `json:"columns"`
	Segments []Segment `json:"segments,omitempty"`
}

// Column mirrors storage.Column (kept separate so this package stays
// import-free of the storage internals it underpins).
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Segment describes one immutable on-disk run of rows.
type Segment struct {
	File string `json:"file"`
	Rows int    `json:"rows"`
	// Format is the segment's page format; 0 (absent, in pre-v2
	// manifests) inherits the manifest's format.
	Format int    `json:"format,omitempty"`
	Pages  []Page `json:"pages"`
}

// Size is the segment's byte length: pages are laid out contiguously
// from offset 0, so the last page's extent is the file size.
func (s *Segment) Size() int64 {
	if len(s.Pages) == 0 {
		return 0
	}
	last := s.Pages[len(s.Pages)-1]
	return last.Off + int64(last.Size)
}

// Page locates one page inside a segment.
type Page struct {
	Off  int64 `json:"off"`
	Size int   `json:"size"`
	Rows int   `json:"rows"`
	// Raw is the page's raw (uncompressed) encoded size — the buffer
	// pool's charge for the decoded page. Zones is the page's
	// per-column zone map. Both absent in format-1 manifests.
	Raw   int    `json:"raw,omitempty"`
	Zones []Zone `json:"zones,omitempty"`
}

// Zone serialises one zone-map entry. Min/Max absent means no bounds
// (all-NULL column, non-finite floats, over-long strings).
type Zone struct {
	Nulls int    `json:"nulls,omitempty"`
	Min   *Value `json:"min,omitempty"`
	Max   *Value `json:"max,omitempty"`
}

// Value is a typed scalar in the manifest: exactly one field set.
// (Bounds holding NaN or Inf are never written — such chunks get no
// bounds — so JSON number encoding is always valid, and Go's
// shortest-round-trip float formatting keeps it exact.)
type Value struct {
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
	B *bool    `json:"b,omitempty"`
}

// Parse decodes and validates manifest bytes: the format must be one
// this build reads (a segment may override the manifest format, so
// segment formats are checked too).
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest corrupt: %w", err)
	}
	if m.Format != FormatV1 && m.Format != FormatV2 {
		return nil, fmt.Errorf("manifest has format %d; this build reads formats %d and %d",
			m.Format, FormatV1, FormatV2)
	}
	for _, t := range m.Tables {
		for _, s := range t.Segments {
			f := s.Format
			if f == 0 {
				f = m.Format
			}
			if f != FormatV1 && f != FormatV2 {
				return nil, fmt.Errorf("table %q: segment %s has unknown format %d", t.Name, s.File, f)
			}
		}
	}
	return &m, nil
}

// Read loads the committed manifest of a directory, returning both
// the parsed catalog and the raw bytes (replication adopts the bytes
// verbatim so a replica's catalog is byte-identical to the
// primary's). os.IsNotExist on the returned error means no commit has
// happened yet.
func Read(dir string) (*Manifest, []byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		return nil, nil, err
	}
	m, err := Parse(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", FileName, err)
	}
	return m, data, nil
}

// Stage writes and fsyncs TmpName with the complete new catalog — the
// step before the commit point. A crash after Stage leaves the
// previous catalog committed; recovery deletes the stray tmp file.
func Stage(dir string, data []byte) error {
	tmp := filepath.Join(dir, TmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", TmpName, err)
	}
	return nil
}

// Install renames the staged TmpName onto FileName — the SINGLE
// atomic commit point — and best-effort fsyncs the directory. A
// directory-fsync failure after the rename only weakens durability (a
// crash may recover the previous version, indistinguishable from
// crashing a moment earlier), so it is deliberately not an error: the
// next successful commit re-syncs the directory.
func Install(dir string) error {
	if err := os.Rename(filepath.Join(dir, TmpName), filepath.Join(dir, FileName)); err != nil {
		return err
	}
	_ = FsyncDir(dir)
	return nil
}

// Commit stages and installs catalog bytes in one call — the whole
// commit point for callers (replication) that need no fault-injection
// seam between the two steps.
func Commit(dir string, data []byte) error {
	if err := Stage(dir, data); err != nil {
		return err
	}
	return Install(dir)
}

// FsyncDir makes renames and file creations in dir durable.
func FsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SegmentID parses the numeric id out of a segment file name,
// doubling as the validity check for names arriving over the wire (a
// replication fetch must never turn a request path into a directory
// traversal).
func SegmentID(name string) (uint64, bool) {
	if !strings.HasPrefix(name, SegPrefix) || !strings.HasSuffix(name, SegSuffix) {
		return 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, SegPrefix), SegSuffix)
	if body == "" || strings.ContainsAny(body, "/\\.") {
		return 0, false
	}
	var id uint64
	if _, err := fmt.Sscanf(body, "%d", &id); err != nil {
		return 0, false
	}
	return id, true
}

// IsSegmentName reports whether name is a well-formed segment file
// name (and nothing else — no path separators, no dots).
func IsSegmentName(name string) bool {
	_, ok := SegmentID(name)
	return ok
}

// Segments returns the manifest's segment descriptors keyed by file
// name. Descriptors are the unit of the replication diff: two
// catalogs referencing the same file name with different descriptors
// (a recycled id after a primary crash) must not be treated as the
// same segment.
func (m *Manifest) Segments() map[string]Segment {
	out := map[string]Segment{}
	for _, t := range m.Tables {
		for _, s := range t.Segments {
			out[s.File] = s
		}
	}
	return out
}

// Diff lists the segments of remote that local (nil for an empty
// directory) does not reference with a byte-identical descriptor —
// i.e. the files a replica must fetch before adopting remote. The
// descriptor comparison, not mere file-name presence, is what makes a
// recycled segment id (same name, different content after a primary
// crash+republish cycle) refetch instead of silently serving the
// stale bytes: descriptors embed the full page directory and
// per-chunk zone maps, so distinct contents collide only if every
// page boundary and every column's min/max agree.
func Diff(local, remote *Manifest) []Segment {
	var have map[string]Segment
	if local != nil {
		have = local.Segments()
	}
	var missing []Segment
	seen := map[string]bool{}
	for _, t := range remote.Tables {
		for _, s := range t.Segments {
			if seen[s.File] {
				continue
			}
			seen[s.File] = true
			if ls, ok := have[s.File]; ok && sameSegment(ls, s) {
				continue
			}
			missing = append(missing, s)
		}
	}
	return missing
}

// sameSegment compares two segment descriptors structurally (via
// their canonical JSON — the descriptors are pure data).
func sameSegment(a, b Segment) bool {
	aj, errA := json.Marshal(a)
	bj, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(aj, bj)
}
