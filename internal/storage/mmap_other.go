//go:build !unix

package storage

import "os"

// Non-unix platforms read segment pages with pread only.

func sysMmap(f *os.File, size int64) []byte { return nil }

func sysMunmap(data []byte) {}
