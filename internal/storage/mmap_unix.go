//go:build unix

package storage

// mmap page source (unix): segment files are immutable once written,
// so a read-only shared mapping is always coherent. Decoded pages
// copy every value out of the mapping (see decodePage), so nothing
// outlives the segment's munmap.

import (
	"os"
	"syscall"
)

// sysMmap maps the first size bytes of f read-only, or returns nil
// when mapping is unavailable (the caller falls back to pread).
func sysMmap(f *os.File, size int64) []byte {
	if size <= 0 || int64(int(size)) != size {
		return nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return data
}

func sysMunmap(data []byte) {
	if data != nil {
		_ = syscall.Munmap(data)
	}
}
