package storage

// Paged columnar encoding for the disk backend (see disk.go for the
// segment/manifest machinery and docs/ARCHITECTURE.md for the format
// spec).
//
// A segment file is an array of fixed-size pages. Each page holds a
// run of whole rows laid out column-by-column:
//
//	page  := u32 rowCount, chunk[0], ..., chunk[ncols-1], padding
//	chunk := u32 chunkLen, presence bitmap (ceil(rowCount/8) bytes),
//	         values of the present (non-NULL) rows in row order
//
// Values encode by column type: int as 8-byte little-endian two's
// complement, float as the 8-byte little-endian IEEE-754 bit pattern
// (NaNs, infinities and -0 round-trip exactly), bool as one byte,
// string as u32 length + UTF-8 bytes. A page is padded with zeros to
// pageSize; a single row larger than one page gets an oversize page
// padded to the next pageSize multiple, so every page offset stays
// pageSize-aligned (mmap-friendly). Because the engine's type checker
// normalises values on the way into a table (ints widen to float in
// float columns), decoding reproduces the stored expr.Values
// byte-identically — the disk backend shares the in-memory backend's
// byte-identity oracle.

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"quarry/internal/expr"
)

// pageSize is the fixed page capacity (and alignment) of segment
// files.
const pageSize = 64 << 10

// pageCacheBytes bounds the decoded pages kept resident per store
// (the "buffer pool"); a variable so tests can shrink it to force
// eviction. Entries are charged their on-disk padded size — a proxy
// for decoded size that, unlike a page count, keeps oversize pages
// (single huge rows) from blowing the budget: a warehouse larger than
// the pool streams instead of residing.
var pageCacheBytes = 256 << 20

// encodedRowSize returns the value bytes one row contributes to a
// page (excluding its per-column presence bits).
func encodedRowSize(r Row) int {
	n := 0
	for _, v := range r {
		if v.IsNull() {
			continue
		}
		switch v.Kind() {
		case expr.KindInt, expr.KindFloat:
			n += 8
		case expr.KindBool:
			n++
		case expr.KindString:
			n += 4 + len(v.AsString())
		}
	}
	return n
}

// pageOverhead is the fixed cost of a page holding n rows of ncols
// columns: the row-count word plus each chunk's length word and
// presence bitmap.
func pageOverhead(ncols, n int) int {
	return 4 + ncols*(4+(n+7)/8)
}

// splitPages partitions rows into page-sized runs: each run's encoded
// size fits pageSize except when a single row alone exceeds it (an
// oversize page). Returns the row count of each page.
func splitPages(ncols int, rows []Row) []int {
	var counts []int
	n, bytes := 0, 0
	for _, r := range rows {
		rs := encodedRowSize(r)
		if n > 0 && pageOverhead(ncols, n+1)+bytes+rs > pageSize {
			counts = append(counts, n)
			n, bytes = 0, 0
		}
		n++
		bytes += rs
	}
	if n > 0 {
		counts = append(counts, n)
	}
	return counts
}

// encodePage renders one page (padded to a pageSize multiple).
func encodePage(cols []Column, rows []Row) []byte {
	buf := make([]byte, 0, pageSize)
	var u32 [4]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	putU32(uint32(len(rows)))
	var u64 [8]byte
	for ci := range cols {
		chunkAt := len(buf)
		putU32(0) // chunk length, patched below
		bitmapAt := len(buf)
		buf = append(buf, make([]byte, (len(rows)+7)/8)...)
		for ri, r := range rows {
			v := r[ci]
			if v.IsNull() {
				continue
			}
			buf[bitmapAt+ri/8] |= 1 << (ri % 8)
			switch v.Kind() {
			case expr.KindInt:
				binary.LittleEndian.PutUint64(u64[:], uint64(v.AsInt()))
				buf = append(buf, u64[:]...)
			case expr.KindFloat:
				f, _ := v.AsFloat()
				binary.LittleEndian.PutUint64(u64[:], math.Float64bits(f))
				buf = append(buf, u64[:]...)
			case expr.KindBool:
				b := byte(0)
				if v.AsBool() {
					b = 1
				}
				buf = append(buf, b)
			case expr.KindString:
				s := v.AsString()
				putU32(uint32(len(s)))
				buf = append(buf, s...)
			}
		}
		binary.LittleEndian.PutUint32(buf[chunkAt:], uint32(len(buf)-chunkAt-4))
	}
	if pad := len(buf) % pageSize; pad != 0 {
		buf = append(buf, make([]byte, pageSize-pad)...)
	}
	return buf
}

// decodePage reconstructs a page's rows.
func decodePage(cols []Column, buf []byte) ([]Row, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("page shorter than header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	pos := 4
	rows := make([]Row, n)
	backing := make([]expr.Value, n*len(cols))
	for i := range rows {
		rows[i] = backing[i*len(cols) : (i+1)*len(cols)]
	}
	for ci, c := range cols {
		if pos+4 > len(buf) {
			return nil, fmt.Errorf("column %q chunk header truncated", c.Name)
		}
		chunkLen := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if pos+chunkLen > len(buf) {
			return nil, fmt.Errorf("column %q chunk truncated", c.Name)
		}
		chunk := buf[pos : pos+chunkLen]
		pos += chunkLen
		bm := (n + 7) / 8
		if len(chunk) < bm {
			return nil, fmt.Errorf("column %q bitmap truncated", c.Name)
		}
		vp := bm
		for ri := 0; ri < n; ri++ {
			if chunk[ri/8]&(1<<(ri%8)) == 0 {
				continue // NULL: the zero Value
			}
			switch c.Type {
			case "int":
				if vp+8 > len(chunk) {
					return nil, fmt.Errorf("column %q int value truncated", c.Name)
				}
				rows[ri][ci] = expr.Int(int64(binary.LittleEndian.Uint64(chunk[vp:])))
				vp += 8
			case "float":
				if vp+8 > len(chunk) {
					return nil, fmt.Errorf("column %q float value truncated", c.Name)
				}
				rows[ri][ci] = expr.Float(math.Float64frombits(binary.LittleEndian.Uint64(chunk[vp:])))
				vp += 8
			case "bool":
				if vp+1 > len(chunk) {
					return nil, fmt.Errorf("column %q bool value truncated", c.Name)
				}
				rows[ri][ci] = expr.Bool(chunk[vp] != 0)
				vp++
			case "string":
				if vp+4 > len(chunk) {
					return nil, fmt.Errorf("column %q string length truncated", c.Name)
				}
				sl := int(binary.LittleEndian.Uint32(chunk[vp:]))
				vp += 4
				if vp+sl > len(chunk) {
					return nil, fmt.Errorf("column %q string value truncated", c.Name)
				}
				rows[ri][ci] = expr.Str(string(chunk[vp : vp+sl]))
				vp += sl
			default:
				return nil, fmt.Errorf("column %q has unknown type %q", c.Name, c.Type)
			}
		}
	}
	return rows, nil
}

// pageKey identifies a decoded page in the buffer pool. Keying on the
// segment pointer (not its file name) means a dropped segment's
// entries can never be confused with a later segment reusing the id.
type pageKey struct {
	seg  *segment
	page int
}

type pageEntry struct {
	key  pageKey
	rows []Row
	size int // charged bytes (the page's on-disk padded size)
}

// pageCache is the store's buffer pool: an LRU of decoded pages under
// a byte budget. Decoded pages are immutable and shared — an evicted
// page's rows stay valid for whoever still holds them.
type pageCache struct {
	mu   sync.Mutex
	cap  int // byte budget
	used int
	m    map[pageKey]*list.Element
	lru  *list.List // front = most recently used
}

func newPageCache(capacityBytes int) *pageCache {
	if capacityBytes < pageSize {
		capacityBytes = pageSize
	}
	return &pageCache{cap: capacityBytes, m: map[pageKey]*list.Element{}, lru: list.New()}
}

func (c *pageCache) get(k pageKey) ([]Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*pageEntry).rows, true
}

func (c *pageCache) put(k pageKey, rows []Row, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*pageEntry)
		c.used += size - ent.size
		ent.rows, ent.size = rows, size
	} else {
		c.m[k] = c.lru.PushFront(&pageEntry{key: k, rows: rows, size: size})
		c.used += size
	}
	// Evict from the cold end until within budget; the most recent
	// entry always stays (an oversize page larger than the whole
	// budget would otherwise thrash on every touch).
	for c.used > c.cap && c.lru.Len() > 1 {
		el := c.lru.Back()
		c.lru.Remove(el)
		ent := el.Value.(*pageEntry)
		delete(c.m, ent.key)
		c.used -= ent.size
	}
}

// purge drops every entry whose segment fails keep. Cached entries
// pin their segment object — and with it the segment's open file
// descriptor — so after a republish unlinks old segments their pages
// must leave the pool: under the byte budget nothing would ever evict
// them, and a long-running replace-heavy server would accumulate
// dead fds until EMFILE. (A snapshot still reading a dead segment
// re-caches its pages; the next commit's purge drops them again —
// bounded churn, no leak.)
func (c *pageCache) purge(keep func(*segment) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*pageEntry)
		if keep(ent.key.seg) {
			continue
		}
		c.lru.Remove(el)
		delete(c.m, ent.key)
		c.used -= ent.size
	}
}
