package storage

// Paged columnar encoding for the disk backend (see disk.go for the
// segment/manifest machinery and docs/ARCHITECTURE.md for the format
// spec).
//
// A segment file is an array of pages. Each page holds a run of whole
// rows laid out column-by-column. Two page formats exist, selected by
// the manifest's format field:
//
//	format 1 (read-only legacy):
//	  page  := u32 rowCount, chunk[0], ..., chunk[ncols-1], padding
//	  chunk := u32 chunkLen, presence bitmap, raw values of the
//	           present rows in row order
//	  pages are zero-padded to the fixed pageSize (64 KiB)
//
//	format 2 (written by this build):
//	  page  := u32 rowCount, chunk[0], ..., chunk[ncols-1], padding
//	  chunk := u32 chunkLen, u8 encoding tag, body (see encoding.go:
//	           raw, dictionary, run-length or bit-packed)
//	  pages are variable-size, zero-padded to a pageBlock (4 KiB)
//	  multiple so compression actually shrinks the file while offsets
//	  stay block-aligned (mmap-friendly)
//
// Raw values encode by column type: int as 8-byte little-endian two's
// complement, float as the 8-byte little-endian IEEE-754 bit pattern
// (NaNs, infinities and -0 round-trip exactly), bool as one byte,
// string as u32 length + UTF-8 bytes. Pages are still split by their
// RAW encoded size (splitPages), so a decoded page costs ~pageSize of
// memory no matter how well it compressed. Because the engine's type
// checker normalises values on the way into a table (ints widen to
// float in float columns), decoding reproduces the stored expr.Values
// byte-identically — the disk backend shares the in-memory backend's
// byte-identity oracle.

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"

	"quarry/internal/expr"
)

// pageSize is the decoded page capacity: splitPages bounds each
// page's RAW encoding to it, and format-1 files use it as the fixed
// on-disk page size and alignment.
const pageSize = 64 << 10

// pageBlock is the on-disk alignment of format-2 pages: each encoded
// page is zero-padded to a pageBlock multiple.
const pageBlock = 4096

// pageCacheBytes bounds the decoded pages kept resident per store
// (the "buffer pool"); a variable so tests can shrink it to force
// eviction. Entries are charged their on-disk padded size — a proxy
// for decoded size that, unlike a page count, keeps oversize pages
// (single huge rows) from blowing the budget: a warehouse larger than
// the pool streams instead of residing.
var pageCacheBytes = 256 << 20

// encodedRowSize returns the value bytes one row contributes to a
// page (excluding its per-column presence bits).
func encodedRowSize(r Row) int {
	n := 0
	for _, v := range r {
		if v.IsNull() {
			continue
		}
		switch v.Kind() {
		case expr.KindInt, expr.KindFloat:
			n += 8
		case expr.KindBool:
			n++
		case expr.KindString:
			n += 4 + len(v.AsString())
		}
	}
	return n
}

// pageOverhead is the fixed cost of a page holding n rows of ncols
// columns: the row-count word plus each chunk's length word and
// presence bitmap.
func pageOverhead(ncols, n int) int {
	return 4 + ncols*(4+(n+7)/8)
}

// splitPages partitions rows into page-sized runs: each run's encoded
// size fits pageSize except when a single row alone exceeds it (an
// oversize page). Returns the row count of each page.
func splitPages(ncols int, rows []Row) []int {
	var counts []int
	n, bytes := 0, 0
	for _, r := range rows {
		rs := encodedRowSize(r)
		if n > 0 && pageOverhead(ncols, n+1)+bytes+rs > pageSize {
			counts = append(counts, n)
			n, bytes = 0, 0
		}
		n++
		bytes += rs
	}
	if n > 0 {
		counts = append(counts, n)
	}
	return counts
}

// encodedPage is one rendered format-2 page plus the write-time
// metadata the manifest's page directory records alongside it.
type encodedPage struct {
	buf   []byte // padded to a pageBlock multiple
	zones []zone // one per column
	raw   int    // raw (format-1) encoded size: the decoded-memory proxy
}

// TestingForceRaw disables compressed encodings (every chunk encodes
// raw) so tests and benchmarks can measure compression win. Never set
// outside tests.
var TestingForceRaw bool

// encodePage renders one page in format 2, choosing each column
// chunk's encoding by a stats pass and deriving the page's zone map
// from the same pass.
func encodePage(cols []Column, rows []Row) encodedPage {
	ep := encodedPage{
		buf:   make([]byte, 0, pageBlock),
		zones: make([]zone, len(cols)),
		raw:   pageOverhead(len(cols), len(rows)),
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(rows)))
	ep.buf = append(ep.buf, u32[:]...)
	for ci, c := range cols {
		st := analyzeChunk(rows, ci, c.Type)
		ep.zones[ci] = st.zone
		ep.raw += st.rawBytes
		enc := encRaw
		if !TestingForceRaw {
			enc = chooseEncoding(c.Type, st)
		}
		chunkAt := len(ep.buf)
		ep.buf = append(ep.buf, 0, 0, 0, 0) // chunk length, patched below
		ep.buf = append(ep.buf, byte(enc))
		switch enc {
		case encRaw:
			ep.buf = appendRawBody(ep.buf, rows, ci)
		case encDict:
			ep.buf = appendDictBody(ep.buf, rows, ci, st)
		case encRLE:
			ep.buf = appendRLEBody(ep.buf, rows, ci)
		case encBitPack:
			ep.buf = appendBitPackBody(ep.buf, rows, ci, st)
		}
		binary.LittleEndian.PutUint32(ep.buf[chunkAt:], uint32(len(ep.buf)-chunkAt-4))
	}
	if pad := len(ep.buf) % pageBlock; pad != 0 {
		ep.buf = append(ep.buf, make([]byte, pageBlock-pad)...)
	}
	return ep
}

// decodePage reconstructs a page's rows. format selects the chunk
// framing: format-1 chunks are a bare raw body, format-2 chunks carry
// a leading encoding tag.
func decodePage(format int, cols []Column, buf []byte) ([]Row, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("page shorter than header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	pos := 4
	rows := make([]Row, n)
	backing := make([]expr.Value, n*len(cols))
	for i := range rows {
		rows[i] = backing[i*len(cols) : (i+1)*len(cols)]
	}
	for ci, c := range cols {
		if pos+4 > len(buf) {
			return nil, fmt.Errorf("column %q chunk header truncated", c.Name)
		}
		chunkLen := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if chunkLen < 0 || pos+chunkLen > len(buf) {
			return nil, fmt.Errorf("column %q chunk truncated", c.Name)
		}
		chunk := buf[pos : pos+chunkLen]
		pos += chunkLen
		enc := encRaw
		if format >= manifestFormatV2 {
			if len(chunk) < 1 {
				return nil, fmt.Errorf("column %q chunk missing encoding tag", c.Name)
			}
			enc = int(chunk[0])
			chunk = chunk[1:]
		}
		var err error
		switch enc {
		case encRaw:
			err = decodeRawBody(chunk, n, c.Type, rows, ci)
		case encDict:
			err = decodeDictBody(chunk, n, c.Type, rows, ci)
		case encRLE:
			err = decodeRLEBody(chunk, n, c.Type, rows, ci)
		case encBitPack:
			err = decodeBitPackBody(chunk, n, c.Type, rows, ci)
		default:
			err = fmt.Errorf("unknown encoding tag %d", enc)
		}
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", c.Name, err)
		}
	}
	return rows, nil
}

// pageKey identifies a decoded page in the buffer pool. Keying on the
// segment pointer (not its file name) means a dropped segment's
// entries can never be confused with a later segment reusing the id.
type pageKey struct {
	seg  *segment
	page int
}

type pageEntry struct {
	key  pageKey
	rows []Row
	size int // charged bytes (the page's on-disk padded size)
}

// pageCache is the store's buffer pool: an LRU of decoded pages under
// a byte budget. Decoded pages are immutable and shared — an evicted
// page's rows stay valid for whoever still holds them.
type pageCache struct {
	mu   sync.Mutex
	cap  int // byte budget
	used int
	m    map[pageKey]*list.Element
	lru  *list.List // front = most recently used
}

func newPageCache(capacityBytes int) *pageCache {
	if capacityBytes < pageSize {
		capacityBytes = pageSize
	}
	return &pageCache{cap: capacityBytes, m: map[pageKey]*list.Element{}, lru: list.New()}
}

func (c *pageCache) get(k pageKey) ([]Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*pageEntry).rows, true
}

func (c *pageCache) put(k pageKey, rows []Row, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*pageEntry)
		c.used += size - ent.size
		ent.rows, ent.size = rows, size
	} else {
		c.m[k] = c.lru.PushFront(&pageEntry{key: k, rows: rows, size: size})
		c.used += size
	}
	// Evict from the cold end until within budget; the most recent
	// entry always stays (an oversize page larger than the whole
	// budget would otherwise thrash on every touch).
	for c.used > c.cap && c.lru.Len() > 1 {
		el := c.lru.Back()
		c.lru.Remove(el)
		ent := el.Value.(*pageEntry)
		delete(c.m, ent.key)
		c.used -= ent.size
	}
}

// purge drops every entry whose segment fails keep. Cached entries
// pin their segment object — and with it the segment's open file
// descriptor — so after a republish unlinks old segments their pages
// must leave the pool: under the byte budget nothing would ever evict
// them, and a long-running replace-heavy server would accumulate
// dead fds until EMFILE. (A snapshot still reading a dead segment
// re-caches its pages; the next commit's purge drops them again —
// bounded churn, no leak.)
func (c *pageCache) purge(keep func(*segment) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*pageEntry)
		if keep(ent.key.seg) {
			continue
		}
		c.lru.Remove(el)
		delete(c.m, ent.key)
		c.used -= ent.size
	}
}
