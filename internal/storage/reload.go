package storage

import (
	"fmt"
	"os"

	mf "quarry/internal/storage/manifest"
)

// Reload re-reads the committed manifest of a disk-backed database and
// swaps the in-memory catalog to match — the in-process half of
// replication: after internal/replication fetches a primary's missing
// segments and installs its manifest through the commit point, Reload
// makes the new version visible to readers exactly like a local commit
// would (one brief db.mu critical section; snapshots taken before the
// call keep reading their old segments through their open handles).
//
// Segment objects whose manifest descriptor is unchanged are carried
// over — open file handle, decoded buffer-pool pages, mmap — so a
// reload touching one table does not cold-start the others. A file
// name whose descriptor differs (a recycled segment id from a primary
// crash+republish cycle) is re-opened from disk. Unpersisted tail rows
// are discarded: Reload's caller is a replica, whose tables are never
// written between commits.
//
// Files the new manifest no longer references are deleted, mirroring
// recovery at Open.
func (db *DB) Reload() error {
	st := db.store
	if st == nil {
		return fmt.Errorf("storage: Reload requires a disk-backed database")
	}
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	man, _, err := mf.Read(st.dir)
	switch {
	case os.IsNotExist(err):
		return nil // no commit yet: nothing to reload
	case err != nil:
		return fmt.Errorf("storage: reload %s: %w", st.dir, err)
	}
	reuse := map[string]*segment{}
	db.mu.RLock()
	for _, t := range db.tables {
		pg, _ := t.capture()
		if pg == nil {
			continue
		}
		for _, s := range pg.segs {
			if s.dir == st.dir {
				reuse[s.name] = s
			}
		}
	}
	db.mu.RUnlock()
	tables, order, referenced, err := st.rehydrate(man, reuse)
	if err != nil {
		return fmt.Errorf("storage: reload %s: %w", st.dir, err)
	}
	db.mu.Lock()
	db.tables, db.order, db.version = tables, order, man.Version
	db.mu.Unlock()
	st.gc(referenced)
	return nil
}
