package storage

import "fmt"

// This file implements snapshot isolation for readers: a Snapshot
// captures, under a single lock acquisition, an immutable view of a
// set of tables (the table objects current at that instant, clamped to
// their row counts at that instant). Queries that read only through
// the snapshot see a stable state while ETL runs concurrently:
// replace-mode loads swap whole table objects in the DB map (the
// snapshot keeps the old object alive), and append-mode loads only add
// rows past the clamped prefix (appends never move existing rows, so
// the captured slice view stays valid). Disk-backed tables snapshot
// the same way: the captured pager is immutable (commits install a
// new pager object rather than mutating the old one), its segment
// files stay readable through their open handles even after a
// republish unlinks them, and the in-memory tail is clamped exactly
// like a memory table's rows.

// TableView is one table of a Snapshot: an immutable, lock-free view
// of the rows that existed when the snapshot was taken. Callers must
// not mutate the returned rows.
type TableView struct {
	name string
	cols []Column
	by   map[string]int
	pg   *pager // captured paged base (disk-backed tables)
	rows []Row  // captured in-memory tail
}

// Name returns the table name.
func (v *TableView) Name() string { return v.name }

// Columns returns the table's column definitions (shared; do not
// mutate).
func (v *TableView) Columns() []Column { return v.cols }

// ColumnIndex returns the position of a column.
func (v *TableView) ColumnIndex(name string) (int, bool) {
	i, ok := v.by[name]
	return i, ok
}

// NumRows reports the snapshotted row count.
func (v *TableView) NumRows() int64 { return int64(v.pg.numRows() + len(v.rows)) }

// ReadBatch returns exactly min(max, NumRows-start) rows starting at
// position start, or nil once start is past the end. Unlike
// Table.ReadBatch it takes no lock: the view is immutable. On
// disk-backed views this is the paged cursor the engine and the OLAP
// fast path stream over.
func (v *TableView) ReadBatch(start, max int) []Row {
	return combinedRead(v.pg, v.rows, start, max)
}

// Freeze materialises the view as a standalone read-only Table sharing
// the snapshotted rows (no copy). Appending to a frozen table never
// disturbs the shared backing array (the row slice is capacity-capped
// and the pager immutable), but frozen tables are meant for read-only
// use, e.g. attaching a consistent source set to a scratch DB for
// engine execution.
func (v *TableView) Freeze() *Table {
	by := make(map[string]int, len(v.by))
	for k, i := range v.by {
		by[k] = i
	}
	return &Table{
		Name:    v.name,
		Columns: append([]Column(nil), v.cols...),
		by:      by,
		pg:      v.pg,
		rows:    v.rows,
	}
}

// Snapshot is a consistent read view over a set of tables.
type Snapshot struct {
	version uint64
	views   map[string]*TableView
}

// Snapshot captures an immutable view of the named tables plus the
// DB's current version, all under one lock acquisition. It fails if
// any table does not exist.
func (db *DB) Snapshot(names ...string) (*Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := &Snapshot{version: db.version, views: make(map[string]*TableView, len(names))}
	for _, name := range names {
		if _, dup := s.views[name]; dup {
			continue
		}
		t, ok := db.tables[name]
		if !ok {
			return nil, fmt.Errorf("storage: snapshot: table %q does not exist", name)
		}
		t.mu.RLock()
		pg := t.pg
		rows := t.rows[:len(t.rows):len(t.rows)]
		t.mu.RUnlock()
		s.views[name] = &TableView{name: name, cols: t.Columns, by: t.by, pg: pg, rows: rows}
	}
	return s, nil
}

// Table returns the view of one snapshotted table.
func (s *Snapshot) Table(name string) (*TableView, bool) {
	v, ok := s.views[name]
	return v, ok
}

// Version reports the DB structural version the snapshot was taken
// at; stable cache keys combine it with the query.
func (s *Snapshot) Version() uint64 { return s.version }
