package storage

import (
	"fmt"
	"sync"
	"testing"

	"quarry/internal/expr"
)

func mkTable(t *testing.T, db *DB, name string, n int) *Table {
	t.Helper()
	tb, err := db.CreateTable(name, []Column{{Name: "id", Type: "int"}, {Name: "v", Type: "string"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tb.Insert(Row{expr.Int(int64(i)), expr.Str(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestSnapshotIgnoresLaterAppends(t *testing.T) {
	db := NewDB()
	tb := mkTable(t, db, "t", 3)
	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(Row{expr.Int(99), expr.Str("late")}); err != nil {
		t.Fatal(err)
	}
	v, ok := snap.Table("t")
	if !ok {
		t.Fatal("view missing")
	}
	if v.NumRows() != 3 {
		t.Fatalf("snapshot rows = %d, want 3", v.NumRows())
	}
	if got := v.ReadBatch(0, 10); len(got) != 3 {
		t.Fatalf("batch = %d rows, want 3", len(got))
	}
	if v.ReadBatch(3, 10) != nil {
		t.Fatal("read past snapshot end returned rows")
	}
	if tb.NumRows() != 4 {
		t.Fatalf("live table rows = %d, want 4", tb.NumRows())
	}
}

func TestSnapshotSurvivesReplace(t *testing.T) {
	db := NewDB()
	mkTable(t, db, "t", 2)
	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateOrReplaceTable("t", []Column{{Name: "other", Type: "int"}}); err != nil {
		t.Fatal(err)
	}
	v, _ := snap.Table("t")
	if v.NumRows() != 2 {
		t.Fatalf("snapshot rows = %d, want 2", v.NumRows())
	}
	if _, ok := v.ColumnIndex("v"); !ok {
		t.Fatal("snapshot lost original columns")
	}
}

func TestSnapshotUnknownTable(t *testing.T) {
	db := NewDB()
	if _, err := db.Snapshot("ghost"); err == nil {
		t.Fatal("snapshot of missing table succeeded")
	}
}

func TestFreezeSharesRowsWithoutCopy(t *testing.T) {
	db := NewDB()
	mkTable(t, db, "t", 5)
	snap, err := db.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := snap.Table("t")
	frozen := v.Freeze()
	if frozen.NumRows() != 5 {
		t.Fatalf("frozen rows = %d", frozen.NumRows())
	}
	// Attach into a scratch DB and read through the normal API.
	scratch := NewDB()
	if err := scratch.Attach(frozen); err != nil {
		t.Fatal(err)
	}
	got, ok := scratch.Table("t")
	if !ok || got.NumRows() != 5 {
		t.Fatal("attached table unreadable")
	}
	// Appending to the frozen table must not disturb the snapshot
	// (capacity-capped slice forces reallocation).
	if err := frozen.Insert(Row{expr.Int(100), expr.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 5 {
		t.Fatalf("snapshot grew to %d rows", v.NumRows())
	}
	if err := scratch.Attach(frozen); err == nil {
		t.Fatal("double attach succeeded")
	}
}

func TestVersionBumpsOnStructuralChanges(t *testing.T) {
	db := NewDB()
	v0 := db.Version()
	mkTable(t, db, "a", 1)
	if db.Version() == v0 {
		t.Fatal("create did not bump version")
	}
	v1 := db.Version()
	if _, err := db.CreateOrReplaceTable("a", []Column{{Name: "x", Type: "int"}}); err != nil {
		t.Fatal(err)
	}
	if db.Version() == v1 {
		t.Fatal("replace did not bump version")
	}
	v2 := db.Version()
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if db.Version() == v2 {
		t.Fatal("drop did not bump version")
	}
}

func TestPublishSwapsAtomically(t *testing.T) {
	db := NewDB()
	mkTable(t, db, "t", 2)
	staged, err := NewStagingTable("t", []Column{{Name: "id", Type: "int"}, {Name: "v", Type: "string"}})
	if err != nil {
		t.Fatal(err)
	}
	// While staged, the live table is untouched.
	if err := staged.Insert(Row{expr.Int(7), expr.Str("staged")}); err != nil {
		t.Fatal(err)
	}
	live, _ := db.Table("t")
	if live.NumRows() != 2 {
		t.Fatalf("live rows = %d during staging", live.NumRows())
	}
	vBefore := db.Version()
	db.Publish(staged)
	if db.Version() == vBefore {
		t.Fatal("publish did not bump version")
	}
	now, _ := db.Table("t")
	if now.NumRows() != 1 {
		t.Fatalf("published rows = %d, want 1", now.NumRows())
	}
	// Publishing under a new name registers it.
	fresh, _ := NewStagingTable("u", []Column{{Name: "id", Type: "int"}})
	db.Publish(fresh)
	if _, ok := db.Table("u"); !ok {
		t.Fatal("publish of new table did not register it")
	}
}

// TestSnapshotConcurrentWithWrites races snapshots against appends and
// replaces; run under -race this checks the locking discipline.
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	db := NewDB()
	mkTable(t, db, "t", 10)
	var readers sync.WaitGroup
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%5 == 4 {
				staged, _ := NewStagingTable("t", []Column{{Name: "id", Type: "int"}, {Name: "v", Type: "string"}})
				for j := 0; j < 10; j++ {
					_ = staged.Insert(Row{expr.Int(int64(j)), expr.Str("r")})
				}
				db.Publish(staged)
				continue
			}
			tb, _ := db.Table("t")
			_ = tb.Insert(Row{expr.Int(int64(i)), expr.Str("w")})
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				snap, err := db.Snapshot("t")
				if err != nil {
					t.Error(err)
					return
				}
				v, _ := snap.Table("t")
				n := int(v.NumRows())
				seen := 0
				for start := 0; ; start += 3 {
					b := v.ReadBatch(start, 3)
					if b == nil {
						break
					}
					seen += len(b)
				}
				if seen != n {
					t.Errorf("snapshot read %d rows, claimed %d", seen, n)
					return
				}
			}
		}()
	}
	// Stop the writer only after every reader finishes, so writes
	// overlap reads for the whole test.
	readers.Wait()
	close(stop)
	<-writerDone
}
