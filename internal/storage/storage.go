// Package storage implements the embedded relational store Quarry
// uses on both ends of an ETL run: it hosts the source relations the
// flows extract from and the deployed data-warehouse tables the flows
// load into. It stands in for the PostgreSQL instance of the paper's
// demonstration (the Design Deployer additionally emits real
// PostgreSQL DDL text via internal/sqlgen).
//
// The store is a typed, in-memory, mutex-guarded table heap: exactly
// what the engine and the benchmarks need, with none of the server
// machinery that would be irrelevant to the reproduction.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"quarry/internal/expr"
)

// Column is a typed column of a table.
type Column struct {
	Name string
	Type string // "int", "float", "string", "bool"
}

// Row is one tuple; positions match the table's columns.
type Row []expr.Value

// Table is a typed row heap.
type Table struct {
	Name    string
	Columns []Column

	mu   sync.RWMutex
	rows []Row
	by   map[string]int
}

func newTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: append([]Column(nil), cols...), by: map[string]int{}}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: table %q has an unnamed column", name)
		}
		if _, dup := t.by[c.Name]; dup {
			return nil, fmt.Errorf("storage: table %q repeats column %q", name, c.Name)
		}
		switch c.Type {
		case "int", "float", "string", "bool":
		default:
			return nil, fmt.Errorf("storage: table %q column %q has unknown type %q", name, c.Name, c.Type)
		}
		t.by[c.Name] = i
	}
	return t, nil
}

// ColumnIndex returns the position of a column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.by[name]
	return i, ok
}

// checkRow verifies arity and value kinds against column types.
// Integers are accepted into float columns (widened on the way in).
func (t *Table) checkRow(r Row) (Row, error) {
	if len(r) != len(t.Columns) {
		return nil, fmt.Errorf("storage: table %q expects %d values, got %d", t.Name, len(t.Columns), len(r))
	}
	out := make(Row, len(r))
	for i, v := range r {
		c := t.Columns[i]
		if v.IsNull() {
			out[i] = v
			continue
		}
		switch c.Type {
		case "int":
			if v.Kind() != expr.KindInt {
				return nil, typeErr(t.Name, c, v)
			}
		case "float":
			switch v.Kind() {
			case expr.KindFloat:
			case expr.KindInt:
				f, _ := v.AsFloat()
				v = expr.Float(f)
			default:
				return nil, typeErr(t.Name, c, v)
			}
		case "string":
			if v.Kind() != expr.KindString {
				return nil, typeErr(t.Name, c, v)
			}
		case "bool":
			if v.Kind() != expr.KindBool {
				return nil, typeErr(t.Name, c, v)
			}
		}
		out[i] = v
	}
	return out, nil
}

func typeErr(table string, c Column, v expr.Value) error {
	return fmt.Errorf("storage: table %q column %q (%s) rejects %s value %s", table, c.Name, c.Type, v.Kind(), v)
}

// Insert appends one row.
func (t *Table) Insert(r Row) error {
	checked, err := t.checkRow(r)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.rows = append(t.rows, checked)
	t.mu.Unlock()
	return nil
}

// InsertAll appends many rows, failing atomically on the first bad
// row (nothing is inserted).
func (t *Table) InsertAll(rows []Row) error {
	checked := make([]Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return err
		}
		checked[i] = c
	}
	t.mu.Lock()
	t.rows = append(t.rows, checked...)
	t.mu.Unlock()
	return nil
}

// NumRows reports the row count.
func (t *Table) NumRows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.rows))
}

// Scan calls fn for every row. The row slice must not be retained or
// mutated. Scanning holds a read lock; fn must not write to the same
// table.
func (t *Table) Scan(fn func(Row) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch returns up to max rows starting at position start, or nil
// once start is past the end. The returned slice is a shared,
// immutable view: callers must not mutate it or the rows it holds.
// (Appends past the view never move existing rows, so the view stays
// valid while the table grows.) Cursor-style batch reads amortise one
// lock acquisition over max rows, where Scan pays one callback per
// row under a lock held for the whole table.
func (t *Table) ReadBatch(start, max int) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if start < 0 || start >= len(t.rows) || max <= 0 {
		return nil
	}
	end := start + max
	if end > len(t.rows) {
		end = len(t.rows)
	}
	return t.rows[start:end:end]
}

// AppendBatch validates and appends a batch of rows under a single
// lock acquisition, failing atomically per batch (nothing from a bad
// batch is inserted). It is the write-side counterpart of ReadBatch:
// streaming loaders push fixed-size batches through it instead of
// buffering an entire load for InsertAll.
func (t *Table) AppendBatch(rows []Row) error {
	return t.InsertAll(rows)
}

// Rows returns a copy of all rows; for tests and small results.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = append(Row(nil), r...)
	}
	return out
}

// Truncate deletes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	t.rows = nil
	t.mu.Unlock()
}

// DB is a named collection of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
	// version counts structural changes (create/replace/drop/attach);
	// result caches key on it to detect reloads of the warehouse.
	version uint64
}

// Version reports the structural version: it increases whenever a
// table is created, replaced, dropped or attached, and once per ETL
// run commit (PublishAll — which append-only runs also call), so
// version-keyed caches observe every load. Direct row appends outside
// an engine run do not bump it.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// CreateTable creates a table; it fails if the name exists.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	db.tables[name] = t
	db.order = append(db.order, name)
	db.version++
	return t, nil
}

// NewStagingTable creates a detached table registered in no database:
// loaders build replace-mode loads in one, then swap the finished
// table in atomically with Publish, so concurrent readers never
// observe a half-loaded table.
func NewStagingTable(name string, cols []Column) (*Table, error) {
	return newTable(name, cols)
}

// Publish atomically registers the table under its name, replacing
// any previous version. Snapshots and readers holding the previous
// table object keep their stable view.
func (db *DB) Publish(t *Table) { db.PublishAll([]*Table{t}) }

// PublishAll registers every table in one critical section — the
// commit point of an ETL run: a concurrent Snapshot sees either none
// or all of the run's replace-mode loads, never a mix of new facts
// with old dimensions. The version is bumped once per call, even for
// an empty table list (append-only runs call it with no tables so
// version-keyed caches still observe the change).
func (db *DB) PublishAll(tables []*Table) { db.CommitRun(tables, nil) }

// AppendDelta is a staged append-mode load: rows destined for an
// existing live table, buffered in a detached Delta table (same column
// layout as Target, rows already validated against it) until the run
// commits. Staging appends keeps failed runs from leaving a partial
// append behind in the live table.
type AppendDelta struct {
	Target *Table
	Delta  *Table
}

// CommitRun is the commit point of an ETL run: it publishes every
// replace-mode table and merges every staged append delta into its
// live target in one critical section, then bumps the version once. A
// concurrent Snapshot therefore sees either none or all of the run's
// loads — replace and append alike — and a run that fails before
// CommitRun leaves every live table byte-identical to its pre-run
// state.
func (db *DB) CommitRun(tables []*Table, appends []AppendDelta) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range tables {
		if _, exists := db.tables[t.Name]; !exists {
			db.order = append(db.order, t.Name)
		}
		db.tables[t.Name] = t
	}
	for _, a := range appends {
		a.Delta.mu.RLock()
		rows := a.Delta.rows
		a.Delta.mu.RUnlock()
		if len(rows) == 0 {
			continue
		}
		// Delta rows were validated against the delta's columns, which
		// are a copy of the target's, so they merge without re-checking.
		a.Target.mu.Lock()
		a.Target.rows = append(a.Target.rows, rows...)
		a.Target.mu.Unlock()
	}
	db.version++
}

// Attach registers an existing table object under its own name without
// copying rows; it fails if the name is taken. Scratch databases use it
// to share source tables (typically frozen snapshot views) with a main
// database while keeping their own writes private.
func (db *DB) Attach(t *Table) error {
	if t == nil {
		return fmt.Errorf("storage: cannot attach nil table")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("storage: table %q already exists", t.Name)
	}
	db.tables[t.Name] = t
	db.order = append(db.order, t.Name)
	db.version++
	return nil
}

// CreateOrReplaceTable creates the table, dropping any previous
// version — the loaders' "replace" mode.
func (db *DB) CreateOrReplaceTable(name string, cols []Column) (*Table, error) {
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; !exists {
		db.order = append(db.order, name)
	}
	db.tables[name] = t
	db.version++
	return t, nil
}

// Drop removes a table.
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(db.tables, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	db.version++
	return nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := append([]string(nil), db.order...)
	sort.Strings(out)
	return out
}
