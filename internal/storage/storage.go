// Package storage implements the embedded relational store Quarry
// uses on both ends of an ETL run: it hosts the source relations the
// flows extract from and the deployed data-warehouse tables the flows
// load into. It stands in for the PostgreSQL instance of the paper's
// demonstration (the Design Deployer additionally emits real
// PostgreSQL DDL text via internal/sqlgen).
//
// Two backends share one API:
//
//   - In-memory (NewDB/NewMemDB): a typed, mutex-guarded table heap —
//     the default, and the byte-identity oracle the disk backend is
//     tested against.
//   - Disk-backed (Open): tables live in a paged columnar layout on
//     disk — immutable fixed-page segment files named by a manifest —
//     and survive process restarts. Readers pull pages on demand
//     through a bounded buffer pool, so a warehouse larger than
//     memory streams instead of residing. See disk.go and
//     docs/ARCHITECTURE.md for the format and the crash-safety
//     protocol.
//
// The concurrency contract is identical in both modes. Writers stage
// and commit: replace-mode loads build detached tables
// (NewStagingTable) and an ETL run's loads — replace tables and
// append deltas alike — are published in ONE critical section
// (CommitRun), which on disk is also exactly one manifest fsync+
// rename. Readers take Snapshots: immutable, lock-free views that
// stay stable across concurrent publishes. A run that fails before
// its commit leaves every live table byte-identical to its pre-run
// state — in memory because nothing was merged, on disk because the
// previous manifest still names the previous segments (recovery at
// Open discards whatever the failed run wrote).
//
// Setting QUARRY_STORAGE=disk redirects every NewDB call to a
// disk-backed database in a fresh temporary directory — the CI lever
// that runs the whole test suite against the disk backend.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"quarry/internal/expr"
	mf "quarry/internal/storage/manifest"
)

// Column is a typed column of a table ("int", "float", "string",
// "bool"). It is an alias of the manifest schema's column type: the
// committed catalog and the in-memory catalog describe columns
// identically, so the two layers share one definition.
type Column = mf.Column

// Row is one tuple; positions match the table's columns.
type Row []expr.Value

// Table is a typed row heap. In-memory tables hold all rows in the
// tail slice; disk-backed tables hold committed rows in an immutable
// pager (swapped copy-on-write at commit points) with only
// not-yet-committed rows in the tail.
type Table struct {
	Name    string
	Columns []Column

	mu   sync.RWMutex
	pg   *pager // committed on-disk rows; nil for pure in-memory tables
	rows []Row  // in-memory tail, appended after the pager's rows
	by   map[string]int
}

func newTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: append([]Column(nil), cols...), by: map[string]int{}}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: table %q has an unnamed column", name)
		}
		if _, dup := t.by[c.Name]; dup {
			return nil, fmt.Errorf("storage: table %q repeats column %q", name, c.Name)
		}
		switch c.Type {
		case "int", "float", "string", "bool":
		default:
			return nil, fmt.Errorf("storage: table %q column %q has unknown type %q", name, c.Name, c.Type)
		}
		t.by[c.Name] = i
	}
	return t, nil
}

// ColumnIndex returns the position of a column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.by[name]
	return i, ok
}

// checkRow verifies arity and value kinds against column types.
// Integers are accepted into float columns (widened on the way in).
func (t *Table) checkRow(r Row) (Row, error) {
	if len(r) != len(t.Columns) {
		return nil, fmt.Errorf("storage: table %q expects %d values, got %d", t.Name, len(t.Columns), len(r))
	}
	out := make(Row, len(r))
	for i, v := range r {
		c := t.Columns[i]
		if v.IsNull() {
			out[i] = v
			continue
		}
		switch c.Type {
		case "int":
			if v.Kind() != expr.KindInt {
				return nil, typeErr(t.Name, c, v)
			}
		case "float":
			switch v.Kind() {
			case expr.KindFloat:
			case expr.KindInt:
				f, _ := v.AsFloat()
				v = expr.Float(f)
			default:
				return nil, typeErr(t.Name, c, v)
			}
		case "string":
			if v.Kind() != expr.KindString {
				return nil, typeErr(t.Name, c, v)
			}
		case "bool":
			if v.Kind() != expr.KindBool {
				return nil, typeErr(t.Name, c, v)
			}
		}
		out[i] = v
	}
	return out, nil
}

func typeErr(table string, c Column, v expr.Value) error {
	return fmt.Errorf("storage: table %q column %q (%s) rejects %s value %s", table, c.Name, c.Type, v.Kind(), v)
}

// Insert appends one row.
func (t *Table) Insert(r Row) error {
	checked, err := t.checkRow(r)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.rows = append(t.rows, checked)
	t.mu.Unlock()
	return nil
}

// InsertAll appends many rows, failing atomically on the first bad
// row (nothing is inserted).
func (t *Table) InsertAll(rows []Row) error {
	checked := make([]Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return err
		}
		checked[i] = c
	}
	t.mu.Lock()
	t.rows = append(t.rows, checked...)
	t.mu.Unlock()
	return nil
}

// capture returns the table's current (pager, tail) pair under one
// lock acquisition: a consistent row source, since commits swap both
// together.
func (t *Table) capture() (*pager, []Row) {
	t.mu.RLock()
	pg, tail := t.pg, t.rows[:len(t.rows):len(t.rows)]
	t.mu.RUnlock()
	return pg, tail
}

// NumRows reports the row count.
func (t *Table) NumRows() int64 {
	pg, tail := t.capture()
	return int64(pg.numRows() + len(tail))
}

// Scan calls fn for every row. The row slice must not be retained or
// mutated. Scanning observes the rows present when it starts; fn must
// not write to the same table.
func (t *Table) Scan(fn func(Row) error) error {
	pg, tail := t.capture()
	for start := 0; ; {
		batch := combinedRead(pg, tail, start, 1024)
		if batch == nil {
			return nil
		}
		for _, r := range batch {
			if err := fn(r); err != nil {
				return err
			}
		}
		start += len(batch)
	}
}

// ReadBatch returns exactly min(max, NumRows-start) rows starting at
// position start, or nil once start is past the end. The returned
// slice is a shared, immutable view: callers must not mutate it or
// the rows it holds. (Appends past the view never move existing rows,
// so the view stays valid while the table grows.) Cursor-style batch
// reads amortise one lock acquisition over max rows, where Scan pays
// one callback per row; on disk-backed tables they are the paged
// cursor — each call touches only the pages covering its range,
// decoded through the buffer pool.
func (t *Table) ReadBatch(start, max int) []Row {
	pg, tail := t.capture()
	return combinedRead(pg, tail, start, max)
}

// combinedRead reads the [start, start+max) row range of a paged base
// followed by an in-memory tail, clamping to the total count.
func combinedRead(pg *pager, tail []Row, start, max int) []Row {
	base := pg.numRows()
	total := base + len(tail)
	if start < 0 || start >= total || max <= 0 {
		return nil
	}
	if start+max > total {
		max = total - start
	}
	if start >= base {
		s := start - base
		return tail[s : s+max : s+max]
	}
	if start+max <= base {
		return pg.readBatch(start, max)
	}
	out := make([]Row, 0, max)
	out = append(out, pg.readBatch(start, base-start)...)
	out = append(out, tail[:max-(base-start)]...)
	return out
}

// AppendBatch validates and appends a batch of rows under a single
// lock acquisition, failing atomically per batch (nothing from a bad
// batch is inserted). It is the write-side counterpart of ReadBatch:
// streaming loaders push fixed-size batches through it instead of
// buffering an entire load for InsertAll.
func (t *Table) AppendBatch(rows []Row) error {
	return t.InsertAll(rows)
}

// Rows returns a copy of all rows; for tests and small results.
func (t *Table) Rows() []Row {
	pg, tail := t.capture()
	out := make([]Row, 0, pg.numRows()+len(tail))
	for start := 0; ; {
		batch := combinedRead(pg, tail, start, 1024)
		if batch == nil {
			return out
		}
		for _, r := range batch {
			out = append(out, append(Row(nil), r...))
		}
		start += len(batch)
	}
}

// Truncate deletes all rows. On disk-backed tables the truncation is
// made durable by the next commit (Checkpoint or an ETL run).
func (t *Table) Truncate() {
	t.mu.Lock()
	t.pg = nil
	t.rows = nil
	t.mu.Unlock()
}

// DB is a named collection of tables, optionally backed by a paged
// on-disk store (Open).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
	store  *diskStore // nil for in-memory databases
	// version counts structural changes (create/replace/drop/attach);
	// result caches key on it to detect reloads of the warehouse.
	version uint64
}

// Version reports the structural version: it increases whenever a
// table is created, replaced, dropped or attached, and once per ETL
// run commit (CommitRun — which append-only runs also reach), so
// version-keyed caches observe every load. Direct row appends outside
// an engine run do not bump it. For disk-backed databases the version
// is committed in the manifest and survives restarts.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// NewDB creates an execution database: in-memory by default, or
// disk-backed in a fresh temporary directory when the QUARRY_STORAGE
// environment variable is "disk" (the CI matrix lever that runs every
// test that constructs a DB against the disk backend; it panics on
// setup failure so a misconfigured matrix leg cannot silently test
// the wrong backend). The leg is meant for ephemeral runners: the
// per-DB directories — grouped under <tmp>/quarry-disk-tests so one
// `rm -rf` clears them — are not removed (there is no DB close
// lifecycle to hang cleanup on). Production disk databases name
// their directory explicitly via Open.
func NewDB() *DB {
	if os.Getenv("QUARRY_STORAGE") == "disk" {
		root := filepath.Join(os.TempDir(), "quarry-disk-tests")
		if err := os.MkdirAll(root, 0o755); err != nil {
			panic(fmt.Sprintf("storage: QUARRY_STORAGE=disk: %v", err))
		}
		dir, err := os.MkdirTemp(root, "db-")
		if err != nil {
			panic(fmt.Sprintf("storage: QUARRY_STORAGE=disk: %v", err))
		}
		db, err := Open(dir)
		if err != nil {
			panic(fmt.Sprintf("storage: QUARRY_STORAGE=disk: %v", err))
		}
		return db
	}
	return NewMemDB()
}

// NewMemDB creates an empty in-memory database regardless of
// QUARRY_STORAGE — for scratch work that must stay off disk (the OLAP
// oracle's per-query scratch databases, tests of the memory backend).
func NewMemDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// CreateTable creates a table; it fails if the name exists.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	install := func() {
		db.tables[name] = t
		db.order = append(db.order, name)
		db.version++
	}
	if st := db.store; st != nil {
		st.commitMu.Lock()
		defer st.commitMu.Unlock()
		if _, dup := db.Table(name); dup {
			return nil, fmt.Errorf("storage: table %q already exists", name)
		}
		order, tables := db.catalogWith([]*Table{t})
		if err := db.commitDisk(db.Version()+1, order, tables, nil, nil, install); err != nil {
			return nil, err
		}
		return t, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	install()
	return t, nil
}

// NewStagingTable creates a detached table registered in no database:
// loaders build replace-mode loads in one, then swap the finished
// table in atomically with Publish, so concurrent readers never
// observe a half-loaded table. Staging tables are always in-memory;
// publishing into a disk-backed database writes their rows out as
// fresh segments at the commit.
func NewStagingTable(name string, cols []Column) (*Table, error) {
	return newTable(name, cols)
}

// Publish atomically registers the table under its name, replacing
// any previous version. Snapshots and readers holding the previous
// table object keep their stable view.
func (db *DB) Publish(t *Table) error { return db.PublishAll([]*Table{t}) }

// PublishAll registers every table in one critical section — the
// commit point of an ETL run: a concurrent Snapshot sees either none
// or all of the run's replace-mode loads, never a mix of new facts
// with old dimensions. The version is bumped once per call, even for
// an empty table list (append-only runs call it with no tables so
// version-keyed caches still observe the change).
func (db *DB) PublishAll(tables []*Table) error { return db.CommitRun(tables, nil) }

// AppendDelta is a staged append-mode load: rows destined for an
// existing live table, buffered in a detached Delta table (same column
// layout as Target, rows already validated against it) until the run
// commits. Staging appends keeps failed runs from leaving a partial
// append behind in the live table.
type AppendDelta struct {
	Target *Table
	Delta  *Table
}

// CommitRun is the commit point of an ETL run: it publishes every
// replace-mode table and merges every staged append delta into its
// live target in one critical section, then bumps the version once. A
// concurrent Snapshot therefore sees either none or all of the run's
// loads — replace and append alike. On a disk-backed database the
// same call writes the staged tables and deltas as new segments and
// commits them with one manifest fsync+rename; an error (or a crash)
// anywhere before that rename leaves both the live in-memory tables
// and the on-disk warehouse byte-identical to their pre-run state,
// with no version bump.
func (db *DB) CommitRun(tables []*Table, appends []AppendDelta) error {
	if st := db.store; st != nil {
		st.commitMu.Lock()
		defer st.commitMu.Unlock()
		order, catalog := db.catalogWith(tables)
		var extra map[*Table][]Row
		for _, a := range appends {
			a.Delta.mu.RLock()
			rows := a.Delta.rows[:len(a.Delta.rows):len(a.Delta.rows)]
			a.Delta.mu.RUnlock()
			// A target replaced by this same run's staged tables keeps
			// the memory backend's semantics: the delta lands in the
			// dead object, invisible either way.
			if len(rows) == 0 || catalog[a.Target.Name] != a.Target {
				continue
			}
			if extra == nil {
				extra = map[*Table][]Row{}
			}
			extra[a.Target] = append(extra[a.Target], rows...)
		}
		return db.commitDisk(db.Version()+1, order, catalog, extra, nil, func() {
			for _, t := range tables {
				if _, exists := db.tables[t.Name]; !exists {
					db.order = append(db.order, t.Name)
				}
				db.tables[t.Name] = t
			}
			db.version++
		})
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range tables {
		if _, exists := db.tables[t.Name]; !exists {
			db.order = append(db.order, t.Name)
		}
		db.tables[t.Name] = t
	}
	for _, a := range appends {
		a.Delta.mu.RLock()
		rows := a.Delta.rows
		a.Delta.mu.RUnlock()
		if len(rows) == 0 {
			continue
		}
		// Delta rows were validated against the delta's columns, which
		// are a copy of the target's, so they merge without re-checking.
		a.Target.mu.Lock()
		a.Target.rows = append(a.Target.rows, rows...)
		a.Target.mu.Unlock()
	}
	db.version++
	return nil
}

// Attach registers an existing table object under its own name without
// copying rows; it fails if the name is taken. Scratch databases use it
// to share source tables (typically frozen snapshot views) with a main
// database while keeping their own writes private. Attaching to a
// disk-backed database persists the table like any other.
func (db *DB) Attach(t *Table) error {
	if t == nil {
		return fmt.Errorf("storage: cannot attach nil table")
	}
	install := func() {
		db.tables[t.Name] = t
		db.order = append(db.order, t.Name)
		db.version++
	}
	if st := db.store; st != nil {
		st.commitMu.Lock()
		defer st.commitMu.Unlock()
		if _, dup := db.Table(t.Name); dup {
			return fmt.Errorf("storage: table %q already exists", t.Name)
		}
		order, tables := db.catalogWith([]*Table{t})
		return db.commitDisk(db.Version()+1, order, tables, nil, nil, install)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("storage: table %q already exists", t.Name)
	}
	install()
	return nil
}

// CreateOrReplaceTable creates the table, dropping any previous
// version — the loaders' "replace" mode.
func (db *DB) CreateOrReplaceTable(name string, cols []Column) (*Table, error) {
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	install := func() {
		if _, exists := db.tables[name]; !exists {
			db.order = append(db.order, name)
		}
		db.tables[name] = t
		db.version++
	}
	if st := db.store; st != nil {
		st.commitMu.Lock()
		defer st.commitMu.Unlock()
		order, tables := db.catalogWith([]*Table{t})
		if err := db.commitDisk(db.Version()+1, order, tables, nil, nil, install); err != nil {
			return nil, err
		}
		return t, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	install()
	return t, nil
}

// Drop removes a table.
func (db *DB) Drop(name string) error {
	remove := func() {
		delete(db.tables, name)
		for i, n := range db.order {
			if n == name {
				db.order = append(db.order[:i], db.order[i+1:]...)
				break
			}
		}
		db.version++
	}
	if st := db.store; st != nil {
		st.commitMu.Lock()
		defer st.commitMu.Unlock()
		db.mu.RLock()
		_, ok := db.tables[name]
		order := make([]string, 0, len(db.order))
		tables := make(map[string]*Table, len(db.tables))
		for _, n := range db.order {
			if n == name {
				continue
			}
			order = append(order, n)
			tables[n] = db.tables[n]
		}
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("storage: table %q does not exist", name)
		}
		return db.commitDisk(db.Version()+1, order, tables, nil, nil, remove)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	remove()
	return nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := append([]string(nil), db.order...)
	sort.Strings(out)
	return out
}
