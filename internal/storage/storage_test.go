package storage

import (
	"sync"
	"testing"

	"quarry/internal/expr"
)

func TestCreateAndInsert(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable("nation", []Column{
		{Name: "n_nationkey", Type: "int"},
		{Name: "n_name", Type: "string"},
		{Name: "n_share", Type: "float"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{expr.Int(1), expr.Str("Spain"), expr.Float(0.2)}); err != nil {
		t.Fatal(err)
	}
	// Int widens into float column.
	if err := tbl.Insert(Row{expr.Int(2), expr.Str("France"), expr.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// NULL allowed anywhere.
	if err := tbl.Insert(Row{expr.Int(3), expr.Null(), expr.Null()}); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	rows := tbl.Rows()
	if v, _ := rows[1][2].AsFloat(); v != 1 || rows[1][2].Kind() != expr.KindFloat {
		t.Errorf("widening failed: %v (%v)", rows[1][2], rows[1][2].Kind())
	}
}

func TestInsertTypeErrors(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", []Column{
		{Name: "i", Type: "int"}, {Name: "s", Type: "string"}, {Name: "b", Type: "bool"},
	})
	bad := []Row{
		{expr.Str("x"), expr.Str("ok"), expr.Bool(true)},            // string into int
		{expr.Float(1.5), expr.Str("ok"), expr.Bool(true)},          // float into int
		{expr.Int(1), expr.Int(2), expr.Bool(true)},                 // int into string
		{expr.Int(1), expr.Str("ok"), expr.Int(1)},                  // int into bool
		{expr.Int(1), expr.Str("ok")},                               // arity
		{expr.Int(1), expr.Str("ok"), expr.Bool(true), expr.Int(9)}, // arity
	}
	for i, r := range bad {
		if err := tbl.Insert(r); err == nil {
			t.Errorf("bad row %d accepted", i)
		}
	}
	if tbl.NumRows() != 0 {
		t.Errorf("bad inserts left %d rows", tbl.NumRows())
	}
}

func TestInsertAllAtomic(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", []Column{{Name: "i", Type: "int"}})
	err := tbl.InsertAll([]Row{
		{expr.Int(1)},
		{expr.Str("bad")},
		{expr.Int(3)},
	})
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	if tbl.NumRows() != 0 {
		t.Errorf("partial insert: %d rows", tbl.NumRows())
	}
}

func TestCreateErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("", []Column{{Name: "a", Type: "int"}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "", Type: "int"}}); err == nil {
		t.Error("unnamed column accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: "int"}, {Name: "a", Type: "int"}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: "blob"}}); err == nil {
		t.Error("bad type accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: "int"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: "int"}}); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestCreateOrReplace(t *testing.T) {
	db := NewDB()
	t1, _ := db.CreateTable("t", []Column{{Name: "a", Type: "int"}})
	t1.Insert(Row{expr.Int(1)})
	t2, err := db.CreateOrReplaceTable("t", []Column{{Name: "b", Type: "string"}})
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 0 {
		t.Error("replacement kept rows")
	}
	cur, _ := db.Table("t")
	if cur.Columns[0].Name != "b" {
		t.Error("replacement not visible")
	}
	if got := len(db.TableNames()); got != 1 {
		t.Errorf("TableNames = %d entries", got)
	}
}

func TestDrop(t *testing.T) {
	db := NewDB()
	db.CreateTable("a", []Column{{Name: "x", Type: "int"}})
	db.CreateTable("b", []Column{{Name: "x", Type: "int"}})
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("a"); ok {
		t.Error("dropped table still visible")
	}
	if err := db.Drop("a"); err == nil {
		t.Error("double drop succeeded")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "b" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestScanAndTruncate(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", []Column{{Name: "a", Type: "int"}})
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{expr.Int(int64(i))})
	}
	var sum int64
	err := tbl.Scan(func(r Row) error {
		sum += r[0].AsInt()
		return nil
	})
	if err != nil || sum != 45 {
		t.Errorf("scan sum = %d, %v", sum, err)
	}
	tbl.Truncate()
	if tbl.NumRows() != 0 {
		t.Error("truncate failed")
	}
	if i, ok := tbl.ColumnIndex("a"); !ok || i != 0 {
		t.Error("ColumnIndex failed")
	}
	if _, ok := tbl.ColumnIndex("ghost"); ok {
		t.Error("ColumnIndex false positive")
	}
}

func TestConcurrentInsertAndScan(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", []Column{{Name: "a", Type: "int"}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := tbl.Insert(Row{expr.Int(int64(w*100 + i))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tbl.Scan(func(Row) error { return nil })
		}
	}()
	wg.Wait()
	<-done
	if tbl.NumRows() != 800 {
		t.Errorf("rows = %d, want 800", tbl.NumRows())
	}
}

func TestReadBatch(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", []Column{{Name: "a", Type: "int"}})
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{expr.Int(int64(i))})
	}
	var got []int64
	for start := 0; ; start += 3 {
		batch := tbl.ReadBatch(start, 3)
		if batch == nil {
			break
		}
		for _, r := range batch {
			got = append(got, r[0].AsInt())
		}
	}
	if len(got) != 10 {
		t.Fatalf("cursor read %d rows, want 10", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Errorf("row %d = %d", i, v)
		}
	}
	if tbl.ReadBatch(10, 3) != nil || tbl.ReadBatch(-1, 3) != nil || tbl.ReadBatch(0, 0) != nil {
		t.Error("out-of-range ReadBatch not nil")
	}
	// A view taken before appends must not see them.
	view := tbl.ReadBatch(8, 100)
	if len(view) != 2 {
		t.Fatalf("tail view = %d rows", len(view))
	}
	tbl.AppendBatch([]Row{{expr.Int(100)}, {expr.Int(101)}})
	if len(view) != 2 || view[1][0].AsInt() != 9 {
		t.Error("append mutated an existing batch view")
	}
	if tbl.NumRows() != 12 {
		t.Errorf("rows after AppendBatch = %d", tbl.NumRows())
	}
}

func TestAppendBatchAtomic(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", []Column{{Name: "a", Type: "int"}})
	err := tbl.AppendBatch([]Row{{expr.Int(1)}, {expr.Str("bad")}})
	if err == nil {
		t.Fatal("typed batch accepted")
	}
	if tbl.NumRows() != 0 {
		t.Errorf("partial batch inserted: %d rows", tbl.NumRows())
	}
}
