package tpch

import (
	"quarry/internal/mapping"
	"quarry/internal/sources"
	"quarry/internal/storage"
)

// The multi-store variant splits TPC-H across two source systems —
// an operational "sales" store (customer/orders/lineitem) and a
// "catalog" store (part/supplier/partsupp/nation/region) — exercising
// the paper's claim that Quarry integrates "new information
// requirements spanning diverse data sources" through the shared
// domain ontology. The ontology is unchanged; only the catalog and
// the mapping differ.

// SalesStore and CatalogStore are the datastore names of the
// multi-store variant.
const (
	SalesStore   = "sales"
	CatalogStore = "catalog"
)

// storeOf assigns each relation to its store in the multi-store
// variant.
func storeOf(relation string) string {
	switch relation {
	case "customer", "orders", "lineitem":
		return SalesStore
	default:
		return CatalogStore
	}
}

// MultiStoreCatalog builds the two-datastore TPC-H catalog.
func MultiStoreCatalog(sf float64) (*sources.Catalog, error) {
	single, err := Catalog(sf)
	if err != nil {
		return nil, err
	}
	src, _ := single.Store(StoreName)
	c := sources.NewCatalog()
	if _, err := c.AddStore(SalesStore, "relational"); err != nil {
		return nil, err
	}
	if _, err := c.AddStore(CatalogStore, "relational"); err != nil {
		return nil, err
	}
	for _, rel := range src.Relations() {
		cp := &sources.Relation{
			Name:       rel.Name,
			Attributes: rel.Attributes,
			PrimaryKey: rel.PrimaryKey,
			Stats:      rel.Stats,
		}
		// Foreign keys are only kept when the target lives in the
		// same store; cross-store links are carried by the ontology's
		// object-property mappings instead.
		for _, fk := range rel.ForeignKeys {
			if storeOf(fk.RefRelation) == storeOf(rel.Name) {
				cp.ForeignKeys = append(cp.ForeignKeys, fk)
			}
		}
		if err := c.AddRelation(storeOf(rel.Name), cp); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MultiStoreMapping rebinds the TPC-H ontology to the two stores.
func MultiStoreMapping() (*mapping.Mapping, error) {
	single, err := Mapping()
	if err != nil {
		return nil, err
	}
	m := mapping.New("tpch-multistore")
	for _, concept := range single.MappedConcepts() {
		cm, _ := single.Concept(concept)
		cp := *cm
		cp.Store = storeOf(cm.Relation)
		if err := m.MapConcept(cp); err != nil {
			return nil, err
		}
	}
	for _, prop := range []string{
		"lineitem_orders", "lineitem_partsupp", "partsupp_part", "partsupp_supplier",
		"supplier_nation", "customer_nation", "orders_customer", "nation_region",
	} {
		pm, ok := single.Property(prop)
		if !ok {
			continue
		}
		if err := m.MapProperty(*pm); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// GenerateMultiStore populates the database for the multi-store
// variant. Table names are store-unique across TPC-H, so both stores
// share one physical database, exactly like the single-store
// generator — the distinction lives in the catalog and mapping
// metadata the interpreter consumes.
func GenerateMultiStore(db *storage.DB, sf float64, seed int64) (Sizes, error) {
	return Generate(db, sf, seed)
}
