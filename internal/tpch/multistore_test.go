package tpch

import (
	"testing"

	"quarry/internal/storage"
)

func TestMultiStoreCatalog(t *testing.T) {
	c, err := MultiStoreCatalog(1)
	if err != nil {
		t.Fatal(err)
	}
	sales, ok := c.Store(SalesStore)
	if !ok {
		t.Fatal("sales store missing")
	}
	catalog, ok := c.Store(CatalogStore)
	if !ok {
		t.Fatal("catalog store missing")
	}
	if got := len(sales.Relations()); got != 3 {
		t.Errorf("sales relations = %d, want 3", got)
	}
	if got := len(catalog.Relations()); got != 5 {
		t.Errorf("catalog relations = %d, want 5", got)
	}
	// Cross-store foreign keys were dropped, same-store ones kept.
	li, _ := sales.Relation("lineitem")
	for _, fk := range li.ForeignKeys {
		if fk.RefRelation == "part" || fk.RefRelation == "supplier" {
			t.Errorf("cross-store FK kept: %v", fk)
		}
	}
	found := false
	for _, fk := range li.ForeignKeys {
		if fk.RefRelation == "orders" {
			found = true
		}
	}
	if !found {
		t.Error("same-store FK lineitem→orders lost")
	}
}

func TestMultiStoreMappingValidates(t *testing.T) {
	o, err := Ontology()
	if err != nil {
		t.Fatal(err)
	}
	c, err := MultiStoreCatalog(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MultiStoreMapping()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(o, c); err != nil {
		t.Fatalf("multi-store mapping invalid: %v", err)
	}
	cm, _ := m.Concept("Lineitem")
	if cm.Store != SalesStore {
		t.Errorf("Lineitem store = %s", cm.Store)
	}
	cm, _ = m.Concept("Part")
	if cm.Store != CatalogStore {
		t.Errorf("Part store = %s", cm.Store)
	}
}

func TestGenerateMultiStore(t *testing.T) {
	db := storage.NewDB()
	sz, err := GenerateMultiStore(db, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Lineitem == 0 {
		t.Error("no lineitems generated")
	}
	if _, ok := db.Table("lineitem"); !ok {
		t.Error("lineitem table missing")
	}
}
