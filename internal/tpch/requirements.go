package tpch

import (
	"fmt"

	"quarry/internal/xrq"
)

// RevenueRequirement is the information requirement of the paper's
// Figure 4: analyse the (average) revenue per part and supplier, for
// parts ordered from Spain.
func RevenueRequirement() *xrq.Requirement {
	return &xrq.Requirement{
		ID:   "IR_revenue",
		Name: "revenue per part and supplier, from Spain",
		Dimensions: []xrq.Dimension{
			{Concept: "Part.p_name"},
			{Concept: "Supplier.s_name"},
		},
		Measures: []xrq.Measure{{
			ID:       "revenue",
			Function: "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
		}},
		Slicers: []xrq.Slicer{{Concept: "Nation.n_name", Operator: "=", Value: "SPAIN"}},
		Aggs: []xrq.Aggregation{
			{Order: 1, Dimension: "Part.p_name", Measure: "revenue", Function: xrq.AggAvg},
			{Order: 1, Dimension: "Supplier.s_name", Measure: "revenue", Function: xrq.AggAvg},
		},
	}
}

// NetProfitRequirement is the second requirement shown in Figure 3
// (fact_table_netprofit): potential net profit of the stocked parts
// per part and supplier, again for Spain — its ETL flow shares the
// partsupp/supplier/nation pipeline with the revenue flow, which is
// what the Design Integrator exploits.
func NetProfitRequirement() *xrq.Requirement {
	return &xrq.Requirement{
		ID:   "IR_netprofit",
		Name: "net profit per part and supplier, from Spain",
		Dimensions: []xrq.Dimension{
			{Concept: "Part.p_name"},
			{Concept: "Supplier.s_name"},
		},
		Measures: []xrq.Measure{{
			ID:       "netprofit",
			Function: "(Part.p_retailprice - Partsupp.ps_supplycost) * Partsupp.ps_availqty",
		}},
		Slicers: []xrq.Slicer{{Concept: "Nation.n_name", Operator: "=", Value: "SPAIN"}},
		Aggs: []xrq.Aggregation{
			{Order: 1, Dimension: "Part.p_name", Measure: "netprofit", Function: xrq.AggSum},
			{Order: 1, Dimension: "Supplier.s_name", Measure: "netprofit", Function: xrq.AggSum},
		},
	}
}

// QuantityByMarketRequirement analyses shipped quantity per customer
// market segment and order priority; it exercises the
// Lineitem→Orders→Customer path.
func QuantityByMarketRequirement() *xrq.Requirement {
	return &xrq.Requirement{
		ID:   "IR_quantity_market",
		Name: "shipped quantity per market segment and priority",
		Dimensions: []xrq.Dimension{
			{Concept: "Customer.c_mktsegment"},
			{Concept: "Orders.o_orderpriority"},
		},
		Measures: []xrq.Measure{{ID: "quantity", Function: "Lineitem.l_quantity"}},
		Aggs: []xrq.Aggregation{
			{Order: 1, Dimension: "Customer.c_mktsegment", Measure: "quantity", Function: xrq.AggSum},
		},
	}
}

// SupplyCostRequirement analyses stocked supply cost per supplier
// nation; a Partsupp-rooted requirement with a Region dimension.
func SupplyCostRequirement() *xrq.Requirement {
	return &xrq.Requirement{
		ID:   "IR_supplycost",
		Name: "supply cost per nation and region",
		Dimensions: []xrq.Dimension{
			{Concept: "Nation.n_name"},
			{Concept: "Region.r_name"},
		},
		Measures: []xrq.Measure{{ID: "supplycost", Function: "Partsupp.ps_supplycost * Partsupp.ps_availqty"}},
		Aggs: []xrq.Aggregation{
			{Order: 1, Dimension: "Nation.n_name", Measure: "supplycost", Function: xrq.AggSum},
		},
	}
}

// CanonicalRequirements returns the requirement set used by the demo
// scenarios, in presentation order.
func CanonicalRequirements() []*xrq.Requirement {
	return []*xrq.Requirement{
		RevenueRequirement(),
		NetProfitRequirement(),
		QuantityByMarketRequirement(),
		SupplyCostRequirement(),
	}
}

// GenerateRequirements synthesises n distinct, valid requirements by
// sweeping measure/dimension/slicer templates; used by the scalability
// benchmarks (incremental integration over many requirements).
func GenerateRequirements(n int) []*xrq.Requirement {
	type tmpl struct {
		measure string
		formula string
		agg     xrq.AggFunc
	}
	measures := []tmpl{
		{"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)", xrq.AggSum},
		{"quantity", "Lineitem.l_quantity", xrq.AggSum},
		{"charged", "Lineitem.l_extendedprice * (1 + Lineitem.l_tax)", xrq.AggSum},
		{"avg_discount", "Lineitem.l_discount", xrq.AggAvg},
	}
	dims := [][]string{
		{"Part.p_name"},
		{"Supplier.s_name"},
		{"Part.p_brand", "Supplier.s_name"},
		{"Nation.n_name"},
		{"Customer.c_mktsegment"},
		{"Orders.o_orderpriority", "Nation.n_name"},
		{"Region.r_name"},
		{"Part.p_type", "Region.r_name"},
	}
	slicers := [][]xrq.Slicer{
		nil,
		{{Concept: "Nation.n_name", Operator: "=", Value: "SPAIN"}},
		{{Concept: "Lineitem.l_discount", Operator: ">", Value: "0.02"}},
		{{Concept: "Nation.n_name", Operator: "=", Value: "FRANCE"}},
	}
	out := make([]*xrq.Requirement, 0, n)
	for i := 0; i < n; i++ {
		m := measures[i%len(measures)]
		ds := dims[i%len(dims)]
		r := &xrq.Requirement{
			ID:   fmt.Sprintf("IR_gen_%03d", i),
			Name: fmt.Sprintf("generated requirement %d: %s by %v", i, m.measure, ds),
		}
		for _, d := range ds {
			r.Dimensions = append(r.Dimensions, xrq.Dimension{Concept: d})
		}
		r.Measures = []xrq.Measure{{ID: m.measure, Function: m.formula}}
		r.Slicers = append(r.Slicers, slicers[i%len(slicers)]...)
		r.Aggs = []xrq.Aggregation{{Order: 1, Dimension: ds[0], Measure: m.measure, Function: m.agg}}
		out = append(out, r)
	}
	return out
}
