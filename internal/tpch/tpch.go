// Package tpch provides the TPC-H substrate the paper demonstrates
// Quarry on: the eight-relation source schema, a deterministic data
// generator (a scaled-down, seedable dbgen replacement), the TPC-H
// domain ontology with its source schema mappings, and the canonical
// information requirements of Figures 3–4 (revenue and net profit for
// parts ordered from Spain).
//
// Scaling: row counts are the official TPC-H SF=1 counts divided by
// 10,000 and multiplied by the scale factor, so ScaleFactor(1) yields
// a micro-instance (600 lineitems) suitable for tests, and
// ScaleFactor(100) a laptop-scale instance (60k lineitems) for
// benchmarks. Ratios between tables match the specification.
package tpch

import (
	"fmt"
	"math/rand"

	"quarry/internal/expr"
	"quarry/internal/mapping"
	"quarry/internal/ontology"
	"quarry/internal/sources"
	"quarry/internal/storage"
)

// StoreName is the datastore name used throughout.
const StoreName = "tpch"

// Sizes holds the per-relation row counts for a scale factor.
type Sizes struct {
	Region, Nation, Supplier, Part, Partsupp, Customer, Orders, Lineitem int
}

// SizesFor computes micro-TPC-H row counts for a scale factor.
func SizesFor(sf float64) Sizes {
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	return Sizes{
		Region:   5,
		Nation:   25,
		Supplier: scale(1),   // 10,000 / 10,000
		Part:     scale(20),  // 200,000 / 10,000
		Partsupp: scale(80),  // 800,000 / 10,000
		Customer: scale(15),  // 150,000 / 10,000
		Orders:   scale(150), // 1,500,000 / 10,000
		Lineitem: scale(600), // ~6,000,000 / 10,000
	}
}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
	"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
	"SPAIN", // index 24; the demo slicer
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationRegion maps nation index → region index (fixed, spec-like).
var nationRegion = []int{
	0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 3,
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var partTypes = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var returnFlags = []string{"A", "N", "R"}

// Catalog builds the TPC-H source catalog with statistics for the
// given scale factor.
func Catalog(sf float64) (*sources.Catalog, error) {
	sz := SizesFor(sf)
	c := sources.NewCatalog()
	if _, err := c.AddStore(StoreName, "relational"); err != nil {
		return nil, err
	}
	add := func(name string, rows int, attrs []sources.Attribute, pk []string, fks []sources.ForeignKey, distinct map[string]int64) error {
		return c.AddRelation(StoreName, &sources.Relation{
			Name: name, Attributes: attrs, PrimaryKey: pk, ForeignKeys: fks,
			Stats: sources.Stats{Rows: int64(rows), Distinct: distinct},
		})
	}
	steps := []error{
		add("region", sz.Region,
			[]sources.Attribute{{Name: "r_regionkey", Type: "int"}, {Name: "r_name", Type: "string"}},
			[]string{"r_regionkey"}, nil, nil),
		add("nation", sz.Nation,
			[]sources.Attribute{
				{Name: "n_nationkey", Type: "int"}, {Name: "n_name", Type: "string"}, {Name: "n_regionkey", Type: "int"},
			},
			[]string{"n_nationkey"},
			[]sources.ForeignKey{{Columns: []string{"n_regionkey"}, RefRelation: "region", RefColumns: []string{"r_regionkey"}}},
			map[string]int64{"n_regionkey": int64(sz.Region)}),
		add("supplier", sz.Supplier,
			[]sources.Attribute{
				{Name: "s_suppkey", Type: "int"}, {Name: "s_name", Type: "string"},
				{Name: "s_nationkey", Type: "int"}, {Name: "s_acctbal", Type: "float"},
			},
			[]string{"s_suppkey"},
			[]sources.ForeignKey{{Columns: []string{"s_nationkey"}, RefRelation: "nation", RefColumns: []string{"n_nationkey"}}},
			map[string]int64{"s_nationkey": int64(sz.Nation)}),
		add("part", sz.Part,
			[]sources.Attribute{
				{Name: "p_partkey", Type: "int"}, {Name: "p_name", Type: "string"},
				{Name: "p_brand", Type: "string"}, {Name: "p_type", Type: "string"},
				{Name: "p_retailprice", Type: "float"},
			},
			[]string{"p_partkey"}, nil,
			map[string]int64{"p_brand": 25, "p_type": int64(len(partTypes))}),
		add("partsupp", sz.Partsupp,
			[]sources.Attribute{
				{Name: "ps_partkey", Type: "int"}, {Name: "ps_suppkey", Type: "int"},
				{Name: "ps_availqty", Type: "int"}, {Name: "ps_supplycost", Type: "float"},
			},
			[]string{"ps_partkey", "ps_suppkey"},
			[]sources.ForeignKey{
				{Columns: []string{"ps_partkey"}, RefRelation: "part", RefColumns: []string{"p_partkey"}},
				{Columns: []string{"ps_suppkey"}, RefRelation: "supplier", RefColumns: []string{"s_suppkey"}},
			},
			map[string]int64{"ps_partkey": int64(sz.Part), "ps_suppkey": int64(sz.Supplier)}),
		add("customer", sz.Customer,
			[]sources.Attribute{
				{Name: "c_custkey", Type: "int"}, {Name: "c_name", Type: "string"},
				{Name: "c_nationkey", Type: "int"}, {Name: "c_acctbal", Type: "float"},
				{Name: "c_mktsegment", Type: "string"},
			},
			[]string{"c_custkey"},
			[]sources.ForeignKey{{Columns: []string{"c_nationkey"}, RefRelation: "nation", RefColumns: []string{"n_nationkey"}}},
			map[string]int64{"c_nationkey": int64(sz.Nation), "c_mktsegment": int64(len(segments))}),
		add("orders", sz.Orders,
			[]sources.Attribute{
				{Name: "o_orderkey", Type: "int"}, {Name: "o_custkey", Type: "int"},
				{Name: "o_orderstatus", Type: "string"}, {Name: "o_totalprice", Type: "float"},
				{Name: "o_orderdate", Type: "string"}, {Name: "o_orderpriority", Type: "string"},
			},
			[]string{"o_orderkey"},
			[]sources.ForeignKey{{Columns: []string{"o_custkey"}, RefRelation: "customer", RefColumns: []string{"c_custkey"}}},
			map[string]int64{"o_custkey": int64(sz.Customer), "o_orderpriority": int64(len(priorities))}),
		add("lineitem", sz.Lineitem,
			[]sources.Attribute{
				{Name: "l_orderkey", Type: "int"}, {Name: "l_partkey", Type: "int"},
				{Name: "l_suppkey", Type: "int"}, {Name: "l_linenumber", Type: "int"},
				{Name: "l_quantity", Type: "float"}, {Name: "l_extendedprice", Type: "float"},
				{Name: "l_discount", Type: "float"}, {Name: "l_tax", Type: "float"},
				{Name: "l_returnflag", Type: "string"}, {Name: "l_shipdate", Type: "string"},
			},
			[]string{"l_orderkey", "l_linenumber"},
			[]sources.ForeignKey{
				{Columns: []string{"l_orderkey"}, RefRelation: "orders", RefColumns: []string{"o_orderkey"}},
				{Columns: []string{"l_partkey"}, RefRelation: "part", RefColumns: []string{"p_partkey"}},
				{Columns: []string{"l_suppkey"}, RefRelation: "supplier", RefColumns: []string{"s_suppkey"}},
			},
			map[string]int64{"l_orderkey": int64(sz.Orders), "l_partkey": int64(sz.Part), "l_suppkey": int64(sz.Supplier), "l_returnflag": 3}),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Ontology builds the TPC-H domain ontology: one concept per
// relation, datatype properties for the analytically relevant
// attributes, and the functional associations between them.
func Ontology() (*ontology.Ontology, error) {
	o := ontology.New("tpch")
	type prop struct{ name, typ, label string }
	concepts := []struct {
		id    string
		label string
		props []prop
	}{
		{"Region", "Region", []prop{{"r_name", "string", "region name"}}},
		{"Nation", "Nation", []prop{{"n_name", "string", "nation name"}}},
		{"Supplier", "Supplier", []prop{
			{"s_name", "string", "supplier name"}, {"s_acctbal", "float", "account balance"},
		}},
		{"Part", "Part", []prop{
			{"p_name", "string", "part name"}, {"p_brand", "string", "brand"},
			{"p_type", "string", "part type"}, {"p_retailprice", "float", "retail price"},
		}},
		{"Partsupp", "Part Supply", []prop{
			{"ps_availqty", "int", "available quantity"}, {"ps_supplycost", "float", "supply cost"},
		}},
		{"Customer", "Customer", []prop{
			{"c_name", "string", "customer name"}, {"c_acctbal", "float", "account balance"},
			{"c_mktsegment", "string", "market segment"},
		}},
		{"Orders", "Order", []prop{
			{"o_orderstatus", "string", "order status"}, {"o_totalprice", "float", "total price"},
			{"o_orderdate", "string", "order date"}, {"o_orderpriority", "string", "priority"},
		}},
		{"Lineitem", "Line Item", []prop{
			{"l_quantity", "float", "quantity"}, {"l_extendedprice", "float", "extended price"},
			{"l_discount", "float", "discount"}, {"l_tax", "float", "tax"},
			{"l_returnflag", "string", "return flag"}, {"l_shipdate", "string", "ship date"},
		}},
	}
	for _, c := range concepts {
		if _, err := o.AddConcept(c.id, c.label); err != nil {
			return nil, err
		}
		for _, p := range c.props {
			if err := o.AddProperty(c.id, p.name, p.typ, p.label); err != nil {
				return nil, err
			}
		}
	}
	rels := []struct{ id, dom, rng string }{
		{"lineitem_orders", "Lineitem", "Orders"},
		{"lineitem_partsupp", "Lineitem", "Partsupp"},
		{"partsupp_part", "Partsupp", "Part"},
		{"partsupp_supplier", "Partsupp", "Supplier"},
		{"supplier_nation", "Supplier", "Nation"},
		{"customer_nation", "Customer", "Nation"},
		{"orders_customer", "Orders", "Customer"},
		{"nation_region", "Nation", "Region"},
	}
	for _, r := range rels {
		if err := o.AddObjectProperty(r.id, "", r.dom, r.rng, ontology.ManyToOne); err != nil {
			return nil, err
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// Mapping builds the source schema mapping binding the TPC-H ontology
// to the TPC-H catalog.
func Mapping() (*mapping.Mapping, error) {
	m := mapping.New("tpch")
	id := func(names ...string) map[string]string {
		out := map[string]string{}
		for _, n := range names {
			out[n] = n
		}
		return out
	}
	cms := []mapping.ConceptMapping{
		{Concept: "Region", Store: StoreName, Relation: "region", Attrs: id("r_name"), Key: []string{"r_regionkey"}},
		{Concept: "Nation", Store: StoreName, Relation: "nation", Attrs: id("n_name"), Key: []string{"n_nationkey"}},
		{Concept: "Supplier", Store: StoreName, Relation: "supplier", Attrs: id("s_name", "s_acctbal"), Key: []string{"s_suppkey"}},
		{Concept: "Part", Store: StoreName, Relation: "part", Attrs: id("p_name", "p_brand", "p_type", "p_retailprice"), Key: []string{"p_partkey"}},
		{Concept: "Partsupp", Store: StoreName, Relation: "partsupp", Attrs: id("ps_availqty", "ps_supplycost"), Key: []string{"ps_partkey", "ps_suppkey"}},
		{Concept: "Customer", Store: StoreName, Relation: "customer", Attrs: id("c_name", "c_acctbal", "c_mktsegment"), Key: []string{"c_custkey"}},
		{Concept: "Orders", Store: StoreName, Relation: "orders", Attrs: id("o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority"), Key: []string{"o_orderkey"}},
		{Concept: "Lineitem", Store: StoreName, Relation: "lineitem", Attrs: id("l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_shipdate"), Key: []string{"l_orderkey", "l_linenumber"}},
	}
	for _, cm := range cms {
		if err := m.MapConcept(cm); err != nil {
			return nil, err
		}
	}
	pms := []mapping.PropertyMapping{
		{Property: "lineitem_orders", DomainCols: []string{"l_orderkey"}, RangeCols: []string{"o_orderkey"}},
		{Property: "lineitem_partsupp", DomainCols: []string{"l_partkey", "l_suppkey"}, RangeCols: []string{"ps_partkey", "ps_suppkey"}},
		{Property: "partsupp_part", DomainCols: []string{"ps_partkey"}, RangeCols: []string{"p_partkey"}},
		{Property: "partsupp_supplier", DomainCols: []string{"ps_suppkey"}, RangeCols: []string{"s_suppkey"}},
		{Property: "supplier_nation", DomainCols: []string{"s_nationkey"}, RangeCols: []string{"n_nationkey"}},
		{Property: "customer_nation", DomainCols: []string{"c_nationkey"}, RangeCols: []string{"n_nationkey"}},
		{Property: "orders_customer", DomainCols: []string{"o_custkey"}, RangeCols: []string{"c_custkey"}},
		{Property: "nation_region", DomainCols: []string{"n_regionkey"}, RangeCols: []string{"r_regionkey"}},
	}
	for _, pm := range pms {
		if err := m.MapProperty(pm); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Generate populates db with a deterministic micro-TPC-H instance of
// the given scale factor. The same (sf, seed) always produces the
// same data.
func Generate(db *storage.DB, sf float64, seed int64) (Sizes, error) {
	sz := SizesFor(sf)
	r := rand.New(rand.NewSource(seed))
	mk := func(name string, cols []storage.Column) (*storage.Table, error) {
		return db.CreateOrReplaceTable(name, cols)
	}

	region, err := mk("region", []storage.Column{{Name: "r_regionkey", Type: "int"}, {Name: "r_name", Type: "string"}})
	if err != nil {
		return sz, err
	}
	for i := 0; i < sz.Region; i++ {
		if err := region.Insert(storage.Row{expr.Int(int64(i)), expr.Str(regionNames[i%len(regionNames)])}); err != nil {
			return sz, err
		}
	}

	nation, err := mk("nation", []storage.Column{
		{Name: "n_nationkey", Type: "int"}, {Name: "n_name", Type: "string"}, {Name: "n_regionkey", Type: "int"},
	})
	if err != nil {
		return sz, err
	}
	for i := 0; i < sz.Nation; i++ {
		row := storage.Row{
			expr.Int(int64(i)),
			expr.Str(nationNames[i%len(nationNames)]),
			expr.Int(int64(nationRegion[i%len(nationRegion)] % sz.Region)),
		}
		if err := nation.Insert(row); err != nil {
			return sz, err
		}
	}

	supplier, err := mk("supplier", []storage.Column{
		{Name: "s_suppkey", Type: "int"}, {Name: "s_name", Type: "string"},
		{Name: "s_nationkey", Type: "int"}, {Name: "s_acctbal", Type: "float"},
	})
	if err != nil {
		return sz, err
	}
	for i := 0; i < sz.Supplier; i++ {
		// Nations are assigned round-robin starting at SPAIN (index
		// 24), so the demo's SPAIN slicer selects data at every scale
		// factor; the stride 7 is coprime with 25 and spreads
		// suppliers over all nations.
		row := storage.Row{
			expr.Int(int64(i)),
			expr.Str(fmt.Sprintf("Supplier#%09d", i)),
			expr.Int(int64((24 + i*7) % sz.Nation)),
			expr.Float(float64(r.Intn(1000000))/100 - 1000),
		}
		if err := supplier.Insert(row); err != nil {
			return sz, err
		}
	}

	part, err := mk("part", []storage.Column{
		{Name: "p_partkey", Type: "int"}, {Name: "p_name", Type: "string"},
		{Name: "p_brand", Type: "string"}, {Name: "p_type", Type: "string"},
		{Name: "p_retailprice", Type: "float"},
	})
	if err != nil {
		return sz, err
	}
	for i := 0; i < sz.Part; i++ {
		row := storage.Row{
			expr.Int(int64(i)),
			expr.Str(fmt.Sprintf("part %06d", i)),
			expr.Str(fmt.Sprintf("Brand#%d%d", r.Intn(5)+1, r.Intn(5)+1)),
			expr.Str(partTypes[r.Intn(len(partTypes))]),
			expr.Float(900 + float64(i%200) + float64(r.Intn(100))/100),
		}
		if err := part.Insert(row); err != nil {
			return sz, err
		}
	}

	partsupp, err := mk("partsupp", []storage.Column{
		{Name: "ps_partkey", Type: "int"}, {Name: "ps_suppkey", Type: "int"},
		{Name: "ps_availqty", Type: "int"}, {Name: "ps_supplycost", Type: "float"},
	})
	if err != nil {
		return sz, err
	}
	perPart := sz.Partsupp / sz.Part
	if perPart < 1 {
		perPart = 1
	}
	psCount := 0
	for p := 0; p < sz.Part && psCount < sz.Partsupp; p++ {
		for k := 0; k < perPart && psCount < sz.Partsupp; k++ {
			row := storage.Row{
				expr.Int(int64(p)),
				expr.Int(int64((p + k*7) % sz.Supplier)),
				expr.Int(int64(r.Intn(9999) + 1)),
				expr.Float(float64(r.Intn(100000)) / 100),
			}
			if err := partsupp.Insert(row); err != nil {
				return sz, err
			}
			psCount++
		}
	}
	sz.Partsupp = psCount

	customer, err := mk("customer", []storage.Column{
		{Name: "c_custkey", Type: "int"}, {Name: "c_name", Type: "string"},
		{Name: "c_nationkey", Type: "int"}, {Name: "c_acctbal", Type: "float"},
		{Name: "c_mktsegment", Type: "string"},
	})
	if err != nil {
		return sz, err
	}
	for i := 0; i < sz.Customer; i++ {
		row := storage.Row{
			expr.Int(int64(i)),
			expr.Str(fmt.Sprintf("Customer#%09d", i)),
			expr.Int(int64(r.Intn(sz.Nation))),
			expr.Float(float64(r.Intn(1000000))/100 - 1000),
			expr.Str(segments[r.Intn(len(segments))]),
		}
		if err := customer.Insert(row); err != nil {
			return sz, err
		}
	}

	orders, err := mk("orders", []storage.Column{
		{Name: "o_orderkey", Type: "int"}, {Name: "o_custkey", Type: "int"},
		{Name: "o_orderstatus", Type: "string"}, {Name: "o_totalprice", Type: "float"},
		{Name: "o_orderdate", Type: "string"}, {Name: "o_orderpriority", Type: "string"},
	})
	if err != nil {
		return sz, err
	}
	for i := 0; i < sz.Orders; i++ {
		year := 1992 + r.Intn(7)
		row := storage.Row{
			expr.Int(int64(i)),
			expr.Int(int64(r.Intn(sz.Customer))),
			expr.Str([]string{"O", "F", "P"}[r.Intn(3)]),
			expr.Float(float64(r.Intn(40000000)) / 100),
			expr.Str(fmt.Sprintf("%04d-%02d-%02d", year, r.Intn(12)+1, r.Intn(28)+1)),
			expr.Str(priorities[r.Intn(len(priorities))]),
		}
		if err := orders.Insert(row); err != nil {
			return sz, err
		}
	}

	lineitem, err := mk("lineitem", []storage.Column{
		{Name: "l_orderkey", Type: "int"}, {Name: "l_partkey", Type: "int"},
		{Name: "l_suppkey", Type: "int"}, {Name: "l_linenumber", Type: "int"},
		{Name: "l_quantity", Type: "float"}, {Name: "l_extendedprice", Type: "float"},
		{Name: "l_discount", Type: "float"}, {Name: "l_tax", Type: "float"},
		{Name: "l_returnflag", Type: "string"}, {Name: "l_shipdate", Type: "string"},
	})
	if err != nil {
		return sz, err
	}
	perOrder := sz.Lineitem / sz.Orders
	if perOrder < 1 {
		perOrder = 1
	}
	liCount := 0
	for o := 0; o < sz.Orders && liCount < sz.Lineitem; o++ {
		for ln := 0; ln < perOrder && liCount < sz.Lineitem; ln++ {
			p := r.Intn(sz.Part)
			// Pick a supplier that actually supplies p (matches the
			// partsupp generation pattern).
			s := (p + r.Intn(perPart)*7) % sz.Supplier
			qty := float64(r.Intn(50) + 1)
			year := 1992 + r.Intn(7)
			row := storage.Row{
				expr.Int(int64(o)),
				expr.Int(int64(p)),
				expr.Int(int64(s)),
				expr.Int(int64(ln + 1)),
				expr.Float(qty),
				expr.Float(qty * (900 + float64(p%200))),
				expr.Float(float64(r.Intn(11)) / 100),
				expr.Float(float64(r.Intn(9)) / 100),
				expr.Str(returnFlags[r.Intn(len(returnFlags))]),
				expr.Str(fmt.Sprintf("%04d-%02d-%02d", year, r.Intn(12)+1, r.Intn(28)+1)),
			}
			if err := lineitem.Insert(row); err != nil {
				return sz, err
			}
			liCount++
		}
	}
	sz.Lineitem = liCount
	return sz, nil
}
