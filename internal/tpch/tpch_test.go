package tpch

import (
	"testing"

	"quarry/internal/storage"
)

func TestCatalogValid(t *testing.T) {
	c, err := Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	store, ok := c.Store(StoreName)
	if !ok {
		t.Fatal("store missing")
	}
	if got := len(store.Relations()); got != 8 {
		t.Errorf("relations = %d, want 8", got)
	}
	li, _ := store.Relation("lineitem")
	if li.Stats.Rows != 600 {
		t.Errorf("lineitem rows = %d", li.Stats.Rows)
	}
	if li.DistinctValues("l_returnflag") != 3 {
		t.Errorf("distinct returnflags = %d", li.DistinctValues("l_returnflag"))
	}
}

func TestOntologyValid(t *testing.T) {
	o, err := Ontology()
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Concepts != 8 || st.ObjectProperties != 8 {
		t.Errorf("stats = %+v", st)
	}
	// The MD-critical path of the demo: Lineitem functionally reaches
	// Nation (via Partsupp→Supplier) and Region.
	if _, ok := o.ShortestToOnePath("Lineitem", "Nation"); !ok {
		t.Error("no functional path Lineitem→Nation")
	}
	if _, ok := o.ShortestToOnePath("Partsupp", "Region"); !ok {
		t.Error("no functional path Partsupp→Region")
	}
	// Lineitem is the top fact candidate.
	if ranked := o.FactCandidates(); ranked[0].Concept != "Lineitem" {
		t.Errorf("top fact candidate = %s", ranked[0].Concept)
	}
}

func TestMappingValidates(t *testing.T) {
	o, err := Ontology()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Mapping()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(o, c); err != nil {
		t.Fatalf("mapping invalid: %v", err)
	}
	store, rel, col, err := m.Column("Lineitem.l_extendedprice")
	if err != nil || store != StoreName || rel != "lineitem" || col != "l_extendedprice" {
		t.Errorf("Column = %s %s %s, %v", store, rel, col, err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	db1 := storage.NewDB()
	sz1, err := Generate(db1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	db2 := storage.NewDB()
	sz2, err := Generate(db2, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sz1 != sz2 {
		t.Fatalf("sizes differ: %+v vs %+v", sz1, sz2)
	}
	for _, name := range db1.TableNames() {
		t1, _ := db1.Table(name)
		t2, ok := db2.Table(name)
		if !ok {
			t.Fatalf("table %s missing in second run", name)
		}
		r1, r2 := t1.Rows(), t2.Rows()
		if len(r1) != len(r2) {
			t.Fatalf("%s: %d vs %d rows", name, len(r1), len(r2))
		}
		for i := range r1 {
			for j := range r1[i] {
				if !r1[i][j].Equal(r2[i][j]) && !(r1[i][j].IsNull() && r2[i][j].IsNull()) {
					t.Fatalf("%s row %d col %d differs", name, i, j)
				}
			}
		}
	}
	// Different seed differs somewhere in supplier account balances.
	db3 := storage.NewDB()
	if _, err := Generate(db3, 1, 43); err != nil {
		t.Fatal(err)
	}
	t1, _ := db1.Table("supplier")
	t3, _ := db3.Table("supplier")
	same := true
	r1, r3 := t1.Rows(), t3.Rows()
	for i := range r1 {
		if !r1[i][3].Equal(r3[i][3]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical supplier balances")
	}
	// Supplier 0 is always Spanish (demo slicer guarantee).
	if r1[0][2].AsInt() != 24 {
		t.Errorf("supplier 0 nation = %d, want 24 (SPAIN)", r1[0][2].AsInt())
	}
}

func TestGenerateSizesAndIntegrity(t *testing.T) {
	db := storage.NewDB()
	sz, err := Generate(db, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	li, _ := db.Table("lineitem")
	if li.NumRows() != int64(sz.Lineitem) || sz.Lineitem == 0 {
		t.Errorf("lineitem rows = %d vs %d", li.NumRows(), sz.Lineitem)
	}
	// Referential integrity: every l_suppkey exists in supplier.
	sup, _ := db.Table("supplier")
	valid := map[int64]bool{}
	for _, r := range sup.Rows() {
		valid[r[0].AsInt()] = true
	}
	for _, r := range li.Rows() {
		if !valid[r[2].AsInt()] {
			t.Fatalf("dangling l_suppkey %d", r[2].AsInt())
		}
	}
	// Spain exists in nation (demo slicer must select rows).
	nat, _ := db.Table("nation")
	foundSpain := false
	for _, r := range nat.Rows() {
		if r[1].AsString() == "SPAIN" {
			foundSpain = true
		}
	}
	if !foundSpain {
		t.Error("SPAIN missing from nation")
	}
	// lineitem (partkey, suppkey) pairs exist in partsupp.
	ps, _ := db.Table("partsupp")
	pairs := map[[2]int64]bool{}
	for _, r := range ps.Rows() {
		pairs[[2]int64{r[0].AsInt(), r[1].AsInt()}] = true
	}
	for _, r := range li.Rows() {
		k := [2]int64{r[1].AsInt(), r[2].AsInt()}
		if !pairs[k] {
			t.Fatalf("lineitem references missing partsupp %v", k)
		}
	}
}

func TestSizesScale(t *testing.T) {
	s1, s10 := SizesFor(1), SizesFor(10)
	if s10.Lineitem != 10*s1.Lineitem {
		t.Errorf("lineitem scaling: %d vs %d", s1.Lineitem, s10.Lineitem)
	}
	if s10.Region != s1.Region || s10.Nation != s1.Nation {
		t.Error("region/nation must not scale")
	}
	tiny := SizesFor(0.001)
	if tiny.Supplier < 1 {
		t.Error("sizes must stay positive")
	}
}

func TestCanonicalRequirementsValidate(t *testing.T) {
	o, err := Ontology()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range CanonicalRequirements() {
		if err := r.Validate(o); err != nil {
			t.Errorf("%s: %v", r.ID, err)
		}
	}
}

func TestGenerateRequirementsValidate(t *testing.T) {
	o, err := Ontology()
	if err != nil {
		t.Fatal(err)
	}
	reqs := GenerateRequirements(40)
	if len(reqs) != 40 {
		t.Fatalf("generated %d requirements", len(reqs))
	}
	ids := map[string]bool{}
	for _, r := range reqs {
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if err := r.Validate(o); err != nil {
			t.Errorf("%s: %v", r.ID, err)
		}
	}
}
