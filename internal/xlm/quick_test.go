package xlm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genDesign builds a random valid design: a random number of source
// tables, a chain of random unary ops over each, pairwise joins where
// column names stay disjoint, and loaders on every sink.
func genDesign(r *rand.Rand) *Design {
	d := NewDesign(fmt.Sprintf("gen%d", r.Intn(1000)))
	d.Metadata["seed"] = fmt.Sprint(r.Int63())
	nSrc := 1 + r.Intn(3)
	var heads []string
	for s := 0; s < nSrc; s++ {
		src := fmt.Sprintf("DS%d", s)
		d.AddNode(&Node{Name: src, Type: OpDatastore, Optype: "TableInput",
			Fields: []Field{
				{Name: fmt.Sprintf("k%d", s), Type: "int"},
				{Name: fmt.Sprintf("v%d", s), Type: "float"},
				{Name: fmt.Sprintf("g%d", s), Type: "string"},
			},
			Params: map[string]string{"store": "s", "table": fmt.Sprintf("t%d", s)},
		})
		cur := src
		for i := 0; i < r.Intn(3); i++ {
			name := fmt.Sprintf("OP%d_%d", s, i)
			var n *Node
			switch r.Intn(3) {
			case 0:
				n = &Node{Name: name, Type: OpSelection,
					Params: map[string]string{"predicate": fmt.Sprintf("v%d > %d", s, r.Intn(50))}}
			case 1:
				n = &Node{Name: name, Type: OpFunction,
					Params: map[string]string{"name": fmt.Sprintf("f%d_%d", s, i), "expr": fmt.Sprintf("v%d * %d", s, 1+r.Intn(5))}}
			default:
				n = &Node{Name: name, Type: OpSort,
					Params: map[string]string{"by": fmt.Sprintf("k%d", s)}}
			}
			d.AddNode(n)
			d.AddEdge(cur, name)
			cur = name
		}
		heads = append(heads, cur)
	}
	// Join heads pairwise (schemas are disjoint by construction).
	for len(heads) > 1 {
		l, rr := heads[0], heads[1]
		heads = heads[2:]
		name := fmt.Sprintf("J_%s_%s", l, rr)
		// Join on the int keys of the two sides.
		lk := keyOf(d, l)
		rk := keyOf(d, rr)
		d.AddNode(&Node{Name: name, Type: OpJoin, Params: map[string]string{"on": lk + "=" + rk}})
		d.AddEdge(l, name)
		d.AddEdge(rr, name)
		heads = append([]string{name}, heads...)
	}
	d.AddNode(&Node{Name: "LOAD", Type: OpLoader, Optype: "TableOutput", Params: map[string]string{"table": "out"}})
	d.AddEdge(heads[0], "LOAD")
	return d
}

// keyOf finds an int column flowing out of the node (after schema
// inference the datastore key columns survive every generated op).
func keyOf(d *Design, node string) string {
	if err := d.InferSchemas(); err != nil {
		panic(err)
	}
	n, _ := d.Node(node)
	for _, f := range n.Fields {
		if f.Type == "int" {
			return f.Name
		}
	}
	panic("no int column")
}

// Property: generated designs validate, and XML round-trips preserve
// structure, signatures and schemas.
func TestQuickDesignXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := genDesign(r)
		if err := d.Validate(); err != nil {
			t.Logf("seed %d: generated design invalid: %v", seed, err)
			return false
		}
		text, err := Marshal(d)
		if err != nil {
			return false
		}
		d2, err := Unmarshal(text)
		if err != nil {
			return false
		}
		if err := d2.Validate(); err != nil {
			return false
		}
		if len(d2.Nodes()) != len(d.Nodes()) || len(d2.Edges()) != len(d.Edges()) {
			return false
		}
		for _, n := range d.Nodes() {
			n2, ok := d2.Node(n.Name)
			if !ok || n2.Signature() != n.Signature() || n2.Type != n.Type {
				return false
			}
			if len(n2.Fields) != len(n.Fields) {
				return false
			}
			for i := range n.Fields {
				if n.Fields[i] != n2.Fields[i] {
					return false
				}
			}
		}
		// Edge order (join input order!) preserved.
		e1, e2 := d.Edges(), d2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: MIN/MAX aggregate over any column type the engine can
// order — strings (lexicographic) and bools (false<true) included —
// and infer the column's own type; SUM/AVG stay numeric-only. This
// pins the validator to the OLAP fast path's semantics (ROADMAP
// "oracle/fast-path parity").
func TestQuickStringMinMaxValidates(t *testing.T) {
	aggDesign := func(fn, col string) *Design {
		d := NewDesign("agg")
		d.AddNode(&Node{Name: "DS", Type: OpDatastore,
			Fields: []Field{{Name: "k", Type: "int"}, {Name: "g", Type: "string"}, {Name: "v", Type: "float"}, {Name: "ok", Type: "bool"}},
			Params: map[string]string{"table": "t"}})
		d.AddNode(&Node{Name: "AGG", Type: OpAggregation,
			Params: map[string]string{"group": "k", "aggregates": "out:" + fn + ":" + col}})
		d.AddNode(&Node{Name: "LOAD", Type: OpLoader, Params: map[string]string{"table": "o"}})
		d.AddEdge("DS", "AGG")
		d.AddEdge("AGG", "LOAD")
		return d
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := []string{"MIN", "MAX"}[r.Intn(2)]
		col := []string{"g", "v", "k", "ok"}[r.Intn(4)]
		d := aggDesign(fn, col)
		if err := d.Validate(); err != nil {
			t.Logf("seed %d: %s(%s) rejected: %v", seed, fn, col, err)
			return false
		}
		n, _ := d.Node("AGG")
		wantType := map[string]string{"g": "string", "v": "float", "k": "int", "ok": "bool"}[col]
		for _, fld := range n.Fields {
			if fld.Name == "out" {
				return fld.Type == wantType
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	// SUM over a string column must still be rejected.
	d := aggDesign("SUM", "g")
	if err := d.Validate(); err == nil {
		t.Fatal("SUM over string column validated")
	}
}

// Property: TopoSort is a valid linearisation and Clone is
// independent of the original.
func TestQuickTopoAndClone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := genDesign(r)
		order, err := d.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n.Name] = i
		}
		for _, e := range d.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		c := d.Clone()
		// Mutate the clone heavily.
		for _, n := range c.Nodes() {
			n.Params["mutated"] = "yes"
		}
		c.RemoveNode("LOAD")
		if _, ok := d.Node("LOAD"); !ok {
			return false
		}
		for _, n := range d.Nodes() {
			if n.Params["mutated"] == "yes" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: InferSchemas is idempotent — re-running it never changes
// the outcome.
func TestQuickInferSchemasIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := genDesign(r)
		if err := d.InferSchemas(); err != nil {
			return false
		}
		snapshot := map[string][]Field{}
		for _, n := range d.Nodes() {
			snapshot[n.Name] = append([]Field(nil), n.Fields...)
		}
		if err := d.InferSchemas(); err != nil {
			return false
		}
		for _, n := range d.Nodes() {
			prev := snapshot[n.Name]
			if len(prev) != len(n.Fields) {
				return false
			}
			for i := range prev {
				if prev[i] != n.Fields[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
