package xlm

import (
	"fmt"
	"strings"

	"quarry/internal/expr"
)

// InferSchemas recomputes every node's output schema by propagating
// schemas from the Datastore sources through the DAG, validating each
// operation's parameters against its input schemas along the way.
// Declared Datastore schemas are the fixpoints; all other declared
// schemas are overwritten.
func (d *Design) InferSchemas() error {
	order, err := d.TopoSort()
	if err != nil {
		return err
	}
	for _, n := range order {
		inputs := d.Inputs(n.Name)
		fields, err := d.inferNode(n, inputs)
		if err != nil {
			return err
		}
		if n.Type != OpDatastore {
			n.Fields = fields
		}
	}
	return nil
}

// inferNode computes one node's output schema from its inputs.
func (d *Design) inferNode(n *Node, inputs []*Node) ([]Field, error) {
	arityErr := func(want string) error {
		return fmt.Errorf("xlm: %s node %q has %d inputs, want %s", n.Type, n.Name, len(inputs), want)
	}
	switch n.Type {
	case OpDatastore:
		if len(inputs) != 0 {
			return nil, arityErr("0")
		}
		if len(n.Fields) == 0 {
			return nil, fmt.Errorf("xlm: datastore %q has no declared schema", n.Name)
		}
		seen := map[string]bool{}
		for _, f := range n.Fields {
			if f.Name == "" {
				return nil, fmt.Errorf("xlm: datastore %q has an unnamed field", n.Name)
			}
			if seen[f.Name] {
				return nil, fmt.Errorf("xlm: datastore %q repeats field %q", n.Name, f.Name)
			}
			seen[f.Name] = true
			if _, err := expr.ParseKind(f.Type); err != nil {
				return nil, fmt.Errorf("xlm: datastore %q field %q: %w", n.Name, f.Name, err)
			}
		}
		return n.Fields, nil

	case OpExtraction:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		return append([]Field(nil), inputs[0].Fields...), nil

	case OpSelection:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		pred, err := n.Predicate()
		if err != nil {
			return nil, err
		}
		if err := expr.CheckPredicate(pred, inputs[0].Schema()); err != nil {
			return nil, fmt.Errorf("xlm: selection %q: %w", n.Name, err)
		}
		return append([]Field(nil), inputs[0].Fields...), nil

	case OpProjection:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		specs, err := n.Projections()
		if err != nil {
			return nil, err
		}
		var out []Field
		seen := map[string]bool{}
		for _, sp := range specs {
			f, ok := inputs[0].Field(sp.In)
			if !ok {
				return nil, fmt.Errorf("xlm: projection %q selects missing column %q", n.Name, sp.In)
			}
			if seen[sp.Out] {
				return nil, fmt.Errorf("xlm: projection %q repeats output column %q", n.Name, sp.Out)
			}
			seen[sp.Out] = true
			out = append(out, Field{Name: sp.Out, Type: f.Type})
		}
		return out, nil

	case OpFunction:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		name := n.Param("name")
		if name == "" {
			return nil, fmt.Errorf("xlm: function %q has no output name", n.Name)
		}
		if _, exists := inputs[0].Field(name); exists {
			return nil, fmt.Errorf("xlm: function %q redefines column %q", n.Name, name)
		}
		src := n.Param("expr")
		if src == "" {
			return nil, fmt.Errorf("xlm: function %q has no expression", n.Name)
		}
		e, err := expr.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("xlm: function %q: %w", n.Name, err)
		}
		k, err := expr.Infer(e, inputs[0].Schema())
		if err != nil {
			return nil, fmt.Errorf("xlm: function %q: %w", n.Name, err)
		}
		out := append([]Field(nil), inputs[0].Fields...)
		return append(out, Field{Name: name, Type: k.String()}), nil

	case OpJoin:
		if len(inputs) != 2 {
			return nil, arityErr("2")
		}
		pairs, err := n.JoinPairs()
		if err != nil {
			return nil, err
		}
		l, r := inputs[0], inputs[1]
		for _, p := range pairs {
			lf, ok := l.Field(p[0])
			if !ok {
				return nil, fmt.Errorf("xlm: join %q: left input %q lacks column %q", n.Name, l.Name, p[0])
			}
			rf, ok := r.Field(p[1])
			if !ok {
				return nil, fmt.Errorf("xlm: join %q: right input %q lacks column %q", n.Name, r.Name, p[1])
			}
			if !joinTypesCompatible(lf.Type, rf.Type) {
				return nil, fmt.Errorf("xlm: join %q: %q(%s) vs %q(%s)", n.Name, p[0], lf.Type, p[1], rf.Type)
			}
		}
		var out []Field
		seen := map[string]bool{}
		for _, f := range l.Fields {
			seen[f.Name] = true
			out = append(out, f)
		}
		for _, f := range r.Fields {
			if seen[f.Name] {
				return nil, fmt.Errorf("xlm: join %q: ambiguous column %q; project/rename before joining", n.Name, f.Name)
			}
			out = append(out, f)
		}
		return out, nil

	case OpAggregation:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		group := n.GroupBy()
		aggs, err := n.Aggregates()
		if err != nil {
			return nil, err
		}
		var out []Field
		seen := map[string]bool{}
		for _, g := range group {
			f, ok := inputs[0].Field(g)
			if !ok {
				return nil, fmt.Errorf("xlm: aggregation %q groups by missing column %q", n.Name, g)
			}
			if seen[g] {
				return nil, fmt.Errorf("xlm: aggregation %q repeats group column %q", n.Name, g)
			}
			seen[g] = true
			out = append(out, f)
		}
		for _, a := range aggs {
			if seen[a.Out] {
				return nil, fmt.Errorf("xlm: aggregation %q output %q collides", n.Name, a.Out)
			}
			seen[a.Out] = true
			typ := "int"
			if a.Func != "COUNT" {
				f, ok := inputs[0].Field(a.Col)
				if !ok {
					return nil, fmt.Errorf("xlm: aggregation %q aggregates missing column %q", n.Name, a.Col)
				}
				switch {
				case f.Type == "int" || f.Type == "float":
				case (a.Func == "MIN" || a.Func == "MAX") && (f.Type == "string" || f.Type == "bool"):
					// MIN/MAX over any ordered type: strings compare
					// lexicographically, bools false<true
					// (expr.Value.Compare), computed by the engine kernels
					// and accepted by the OLAP fast path — the validator
					// agrees, keeping star-flow oracle and fast path in
					// parity (ROADMAP "oracle/fast-path parity").
				default:
					return nil, fmt.Errorf("xlm: aggregation %q: %s over non-numeric column %q", n.Name, a.Func, a.Col)
				}
				if a.Func == "AVG" {
					typ = "float"
				} else {
					typ = f.Type
				}
			}
			out = append(out, Field{Name: a.Out, Type: typ})
		}
		return out, nil

	case OpUnion:
		if len(inputs) < 2 {
			return nil, arityErr("≥2")
		}
		first := inputs[0].Fields
		for _, in := range inputs[1:] {
			if len(in.Fields) != len(first) {
				return nil, fmt.Errorf("xlm: union %q inputs differ in arity", n.Name)
			}
			for i := range first {
				if in.Fields[i].Name != first[i].Name || in.Fields[i].Type != first[i].Type {
					return nil, fmt.Errorf("xlm: union %q inputs differ at column %d (%s vs %s)",
						n.Name, i, first[i].Name, in.Fields[i].Name)
				}
			}
		}
		return append([]Field(nil), first...), nil

	case OpSort:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		by := n.SortBy()
		if len(by) == 0 {
			return nil, fmt.Errorf("xlm: sort %q has no ordering columns", n.Name)
		}
		for _, c := range by {
			if _, ok := inputs[0].Field(c); !ok {
				return nil, fmt.Errorf("xlm: sort %q orders by missing column %q", n.Name, c)
			}
		}
		return append([]Field(nil), inputs[0].Fields...), nil

	case OpSurrogateKey:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		key := n.Param("key")
		if key == "" {
			return nil, fmt.Errorf("xlm: surrogate key %q has no key name", n.Name)
		}
		if _, exists := inputs[0].Field(key); exists {
			return nil, fmt.Errorf("xlm: surrogate key %q redefines column %q", n.Name, key)
		}
		on := strings.TrimSpace(n.Param("on"))
		if on == "" {
			return nil, fmt.Errorf("xlm: surrogate key %q has no natural key columns", n.Name)
		}
		for _, c := range strings.Split(on, ",") {
			c = strings.TrimSpace(c)
			if _, ok := inputs[0].Field(c); !ok {
				return nil, fmt.Errorf("xlm: surrogate key %q keyed on missing column %q", n.Name, c)
			}
		}
		out := append([]Field(nil), inputs[0].Fields...)
		return append(out, Field{Name: key, Type: "int"}), nil

	case OpLoader:
		if len(inputs) != 1 {
			return nil, arityErr("1")
		}
		if n.Param("table") == "" {
			return nil, fmt.Errorf("xlm: loader %q has no target table", n.Name)
		}
		return append([]Field(nil), inputs[0].Fields...), nil
	}
	return nil, fmt.Errorf("xlm: node %q has unknown type %q", n.Name, n.Type)
}

// joinTypesCompatible mirrors the engine's join semantics: numerics
// join across int/float, otherwise exact type match.
func joinTypesCompatible(a, b string) bool {
	if a == b {
		return true
	}
	num := func(t string) bool { return t == "int" || t == "float" }
	return num(a) && num(b)
}

// Validate checks the design's structural integrity: known operation
// types, unique names, resolvable edges, acyclicity, per-operation
// arity and parameter well-formedness, and schema propagation
// consistency. Loader-less or Datastore-less designs are rejected —
// an ETL flow must move data from sources to targets.
func (d *Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("xlm: design has no name")
	}
	if len(d.nodes) == 0 {
		return fmt.Errorf("xlm: design %q is empty", d.Name)
	}
	// Sources must all be datastores; sinks must all be loaders.
	for _, n := range d.Sources() {
		if n.Type != OpDatastore {
			return fmt.Errorf("xlm: %s node %q has no inputs", n.Type, n.Name)
		}
	}
	for _, n := range d.Sinks() {
		if n.Type != OpLoader {
			return fmt.Errorf("xlm: %s node %q has no outputs", n.Type, n.Name)
		}
	}
	hasLoader := false
	for _, n := range d.nodes {
		if n.Type == OpLoader {
			hasLoader = true
			if len(d.Outputs(n.Name)) != 0 {
				return fmt.Errorf("xlm: loader %q has outgoing edges", n.Name)
			}
		}
	}
	if !hasLoader {
		return fmt.Errorf("xlm: design %q has no loader", d.Name)
	}
	// InferSchemas performs topological sorting (cycle detection),
	// arity checks and parameter validation in one pass.
	return d.InferSchemas()
}
