// Package xlm implements Quarry's xLM format [12]: the logical,
// platform-independent encoding of an ETL process as a typed DAG of
// data-flow operations. Every component that touches ETL — the
// Requirements Interpreter (synthesis), the ETL Process Integrator
// (consolidation), the cost models, and the Design Deployer (engine
// compilation, Pentaho PDI export) — exchanges xLM designs.
//
// A design consists of named nodes (operations with an output schema
// and typed parameters) and directed edges. The package provides
// structural validation, schema propagation (each operation's output
// schema is derivable from its inputs and parameters), topological
// utilities and canonical operation signatures used for reuse
// detection during integration.
package xlm

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/expr"
)

// OpType enumerates the logical operation kinds of xLM.
type OpType string

// Operation kinds.
const (
	// OpDatastore is a source table (no inputs); params: "store",
	// "table".
	OpDatastore OpType = "Datastore"
	// OpExtraction wraps a datastore scan into the flow (1 input).
	OpExtraction OpType = "Extraction"
	// OpSelection filters rows; params: "predicate".
	OpSelection OpType = "Selection"
	// OpProjection projects/renames columns; params: "columns" =
	// "out1,out2=in2,...".
	OpProjection OpType = "Projection"
	// OpJoin equi-joins two inputs; params: "on" = "l1=r1,l2=r2".
	OpJoin OpType = "Join"
	// OpAggregation groups and aggregates; params: "group" =
	// "c1,c2", "aggregates" = "out:FUNC:col;...".
	OpAggregation OpType = "Aggregation"
	// OpFunction derives a new attribute; params: "name", "expr".
	OpFunction OpType = "Function"
	// OpUnion concatenates union-compatible inputs (≥2 inputs).
	OpUnion OpType = "Union"
	// OpSort orders rows; params: "by" = "c1,c2".
	OpSort OpType = "Sort"
	// OpSurrogateKey assigns a dense integer key per distinct natural
	// key; params: "key" (new column), "on" = "c1,c2".
	OpSurrogateKey OpType = "SurrogateKey"
	// OpLoader writes rows to a target table (no outputs); params:
	// "table", optional "mode" = "replace"|"append".
	OpLoader OpType = "Loader"
)

// knownOps lists all operation kinds for validation.
var knownOps = map[OpType]bool{
	OpDatastore: true, OpExtraction: true, OpSelection: true,
	OpProjection: true, OpJoin: true, OpAggregation: true,
	OpFunction: true, OpUnion: true, OpSort: true,
	OpSurrogateKey: true, OpLoader: true,
}

// Field is a named, typed attribute of an operation's output schema.
type Field struct {
	Name string
	Type string // "int", "float", "string", "bool"
}

// Node is one operation of the flow.
type Node struct {
	Name string
	Type OpType
	// Optype is the platform-level operator hint the paper shows
	// (e.g. "TableInput" for a Datastore); informational.
	Optype string
	// Fields is the operation's output schema. It can be left empty
	// everywhere except Datastore nodes and recomputed with
	// Design.InferSchemas.
	Fields []Field
	Params map[string]string
}

// Param returns a parameter value ("" when absent).
func (n *Node) Param(key string) string {
	if n.Params == nil {
		return ""
	}
	return n.Params[key]
}

// Field looks an output field up by name.
func (n *Node) Field(name string) (Field, bool) {
	for _, f := range n.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// FieldNames returns the output schema's column names in order.
func (n *Node) FieldNames() []string {
	out := make([]string, len(n.Fields))
	for i, f := range n.Fields {
		out[i] = f.Name
	}
	return out
}

// Schema adapts the node's output schema to an expr.Schema.
func (n *Node) Schema() expr.Schema {
	return func(name string) (expr.Kind, bool) {
		f, ok := n.Field(name)
		if !ok {
			return expr.KindNull, false
		}
		k, err := expr.ParseKind(f.Type)
		if err != nil {
			return expr.KindNull, false
		}
		return k, true
	}
}

// AggSpec is one parsed aggregate of an Aggregation node.
type AggSpec struct {
	Out  string // output column
	Func string // SUM/AVG/MIN/MAX/COUNT
	Col  string // input column ("" only for COUNT)
}

// Predicate parses a Selection node's predicate parameter.
func (n *Node) Predicate() (expr.Node, error) {
	src := n.Param("predicate")
	if src == "" {
		return nil, fmt.Errorf("xlm: node %q has no predicate", n.Name)
	}
	p, err := expr.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("xlm: node %q: %w", n.Name, err)
	}
	return p, nil
}

// JoinPairs parses a Join node's "on" parameter into (left, right)
// column pairs.
func (n *Node) JoinPairs() ([][2]string, error) {
	raw := n.Param("on")
	if raw == "" {
		return nil, fmt.Errorf("xlm: join %q has no 'on' parameter", n.Name)
	}
	var out [][2]string
	for _, part := range strings.Split(raw, ",") {
		lr := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(lr) != 2 || lr[0] == "" || lr[1] == "" {
			return nil, fmt.Errorf("xlm: join %q has malformed pair %q", n.Name, part)
		}
		out = append(out, [2]string{strings.TrimSpace(lr[0]), strings.TrimSpace(lr[1])})
	}
	return out, nil
}

// GroupBy parses an Aggregation node's grouping columns (possibly
// empty: a global aggregate).
func (n *Node) GroupBy() []string {
	raw := strings.TrimSpace(n.Param("group"))
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Aggregates parses an Aggregation node's "aggregates" parameter.
func (n *Node) Aggregates() ([]AggSpec, error) {
	raw := strings.TrimSpace(n.Param("aggregates"))
	if raw == "" {
		return nil, fmt.Errorf("xlm: aggregation %q has no aggregates", n.Name)
	}
	var out []AggSpec
	for _, part := range strings.Split(raw, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		bits := strings.Split(part, ":")
		if len(bits) != 3 {
			return nil, fmt.Errorf("xlm: aggregation %q has malformed aggregate %q", n.Name, part)
		}
		spec := AggSpec{Out: strings.TrimSpace(bits[0]), Func: strings.ToUpper(strings.TrimSpace(bits[1])), Col: strings.TrimSpace(bits[2])}
		switch spec.Func {
		case "SUM", "AVG", "MIN", "MAX", "COUNT":
		default:
			return nil, fmt.Errorf("xlm: aggregation %q uses unknown function %q", n.Name, spec.Func)
		}
		if spec.Out == "" {
			return nil, fmt.Errorf("xlm: aggregation %q has unnamed output in %q", n.Name, part)
		}
		if spec.Col == "" && spec.Func != "COUNT" {
			return nil, fmt.Errorf("xlm: aggregation %q: %s needs an input column", n.Name, spec.Func)
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("xlm: aggregation %q has no aggregates", n.Name)
	}
	return out, nil
}

// ProjectionSpec is one parsed output column of a Projection.
type ProjectionSpec struct {
	Out string
	In  string
}

// Projections parses a Projection node's "columns" parameter:
// "out" keeps a column, "out=in" renames in→out.
func (n *Node) Projections() ([]ProjectionSpec, error) {
	raw := strings.TrimSpace(n.Param("columns"))
	if raw == "" {
		return nil, fmt.Errorf("xlm: projection %q has no columns", n.Name)
	}
	var out []ProjectionSpec
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i := strings.IndexByte(part, '='); i >= 0 {
			o, in := strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
			if o == "" || in == "" {
				return nil, fmt.Errorf("xlm: projection %q has malformed column %q", n.Name, part)
			}
			out = append(out, ProjectionSpec{Out: o, In: in})
		} else {
			out = append(out, ProjectionSpec{Out: part, In: part})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("xlm: projection %q has no columns", n.Name)
	}
	return out, nil
}

// SortBy parses a Sort node's ordering columns.
func (n *Node) SortBy() []string {
	raw := strings.TrimSpace(n.Param("by"))
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Signature returns a canonical description of the operation —
// type plus normalised parameters, excluding the node name — used by
// the ETL integrator to detect equivalent operations across flows.
func (n *Node) Signature() string {
	var b strings.Builder
	b.WriteString(string(n.Type))
	keys := make([]string, 0, len(n.Params))
	for k := range n.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := n.Params[k]
		// Normalise expression-bearing parameters through the parser
		// so textual variations compare equal.
		if k == "predicate" || k == "expr" {
			if p, err := expr.Parse(v); err == nil {
				v = p.String()
			}
		}
		b.WriteString("|")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(v)
	}
	return b.String()
}

// Edge is a directed data-flow edge.
type Edge struct {
	From    string
	To      string
	Enabled bool
}

// Design is an xLM document: a named DAG with metadata.
type Design struct {
	Name     string
	Metadata map[string]string
	nodes    []*Node
	edges    []Edge
	index    map[string]*Node
}

// NewDesign creates an empty design.
func NewDesign(name string) *Design {
	return &Design{Name: name, Metadata: map[string]string{}, index: map[string]*Node{}}
}

// AddNode inserts an operation; names must be unique.
func (d *Design) AddNode(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("xlm: unnamed node")
	}
	if !knownOps[n.Type] {
		return fmt.Errorf("xlm: node %q has unknown type %q", n.Name, n.Type)
	}
	if _, dup := d.index[n.Name]; dup {
		return fmt.Errorf("xlm: duplicate node %q", n.Name)
	}
	if n.Params == nil {
		n.Params = map[string]string{}
	}
	d.nodes = append(d.nodes, n)
	d.index[n.Name] = n
	return nil
}

// AddEdge inserts a directed edge between existing nodes.
func (d *Design) AddEdge(from, to string) error {
	if _, ok := d.index[from]; !ok {
		return fmt.Errorf("xlm: edge from unknown node %q", from)
	}
	if _, ok := d.index[to]; !ok {
		return fmt.Errorf("xlm: edge to unknown node %q", to)
	}
	if from == to {
		return fmt.Errorf("xlm: self edge on %q", from)
	}
	for _, e := range d.edges {
		if e.From == from && e.To == to {
			return fmt.Errorf("xlm: duplicate edge %s→%s", from, to)
		}
	}
	d.edges = append(d.edges, Edge{From: from, To: to, Enabled: true})
	return nil
}

// RemoveEdgeBetween deletes the from→to edge if present; the design
// integrator uses it when reordering operations.
func (d *Design) RemoveEdgeBetween(from, to string) {
	edges := d.edges[:0]
	for _, e := range d.edges {
		if e.From == from && e.To == to {
			continue
		}
		edges = append(edges, e)
	}
	d.edges = edges
}

// RemoveNode deletes a node and every edge touching it.
func (d *Design) RemoveNode(name string) {
	if _, ok := d.index[name]; !ok {
		return
	}
	delete(d.index, name)
	nodes := d.nodes[:0]
	for _, n := range d.nodes {
		if n.Name != name {
			nodes = append(nodes, n)
		}
	}
	d.nodes = nodes
	edges := d.edges[:0]
	for _, e := range d.edges {
		if e.From != name && e.To != name {
			edges = append(edges, e)
		}
	}
	d.edges = edges
}

// Node looks an operation up by name.
func (d *Design) Node(name string) (*Node, bool) {
	n, ok := d.index[name]
	return n, ok
}

// Nodes returns operations in insertion order.
func (d *Design) Nodes() []*Node {
	return append([]*Node(nil), d.nodes...)
}

// Edges returns edges in insertion order.
func (d *Design) Edges() []Edge {
	return append([]Edge(nil), d.edges...)
}

// Inputs returns the upstream operations of a node, in edge insertion
// order (join semantics depend on it: first edge is the left input).
func (d *Design) Inputs(name string) []*Node {
	var out []*Node
	for _, e := range d.edges {
		if e.To == name {
			out = append(out, d.index[e.From])
		}
	}
	return out
}

// Outputs returns the downstream operations of a node.
func (d *Design) Outputs(name string) []*Node {
	var out []*Node
	for _, e := range d.edges {
		if e.From == name {
			out = append(out, d.index[e.To])
		}
	}
	return out
}

// Sources returns nodes without inputs (normally Datastores).
func (d *Design) Sources() []*Node {
	hasIn := map[string]bool{}
	for _, e := range d.edges {
		hasIn[e.To] = true
	}
	var out []*Node
	for _, n := range d.nodes {
		if !hasIn[n.Name] {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns nodes without outputs (normally Loaders).
func (d *Design) Sinks() []*Node {
	hasOut := map[string]bool{}
	for _, e := range d.edges {
		hasOut[e.From] = true
	}
	var out []*Node
	for _, n := range d.nodes {
		if !hasOut[n.Name] {
			out = append(out, n)
		}
	}
	return out
}

// TopoSort returns the operations in a topological order, or an error
// when the graph has a cycle. The order is deterministic (stable with
// respect to insertion order).
func (d *Design) TopoSort() ([]*Node, error) {
	indeg := map[string]int{}
	for _, n := range d.nodes {
		indeg[n.Name] = 0
	}
	for _, e := range d.edges {
		indeg[e.To]++
	}
	var queue []*Node
	for _, n := range d.nodes {
		if indeg[n.Name] == 0 {
			queue = append(queue, n)
		}
	}
	var out []*Node
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, e := range d.edges {
			if e.From != cur.Name {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, d.index[e.To])
			}
		}
	}
	if len(out) != len(d.nodes) {
		return nil, fmt.Errorf("xlm: design %q has a cycle", d.Name)
	}
	return out, nil
}

// Clone returns a deep copy of the design.
func (d *Design) Clone() *Design {
	cp := NewDesign(d.Name)
	for k, v := range d.Metadata {
		cp.Metadata[k] = v
	}
	for _, n := range d.nodes {
		nn := &Node{Name: n.Name, Type: n.Type, Optype: n.Optype}
		nn.Fields = append([]Field(nil), n.Fields...)
		nn.Params = map[string]string{}
		for k, v := range n.Params {
			nn.Params[k] = v
		}
		cp.nodes = append(cp.nodes, nn)
		cp.index[nn.Name] = nn
	}
	cp.edges = append([]Edge(nil), d.edges...)
	return cp
}

// Stats summarises design size for cost models and reports.
type Stats struct {
	Nodes  int
	Edges  int
	ByType map[OpType]int
}

// Stats computes size statistics.
func (d *Design) Stats() Stats {
	s := Stats{Nodes: len(d.nodes), Edges: len(d.edges), ByType: map[OpType]int{}}
	for _, n := range d.nodes {
		s.ByType[n.Type]++
	}
	return s
}
