package xlm

import (
	"strings"
	"testing"
)

// revenueFlow builds a realistic ETL flow shaped like the paper's
// Figure 3: extract lineitem/supplier/nation, join, slice to Spain,
// derive revenue, aggregate per supplier, load the fact table.
func revenueFlow(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("etl_revenue")
	d.Metadata["requirement"] = "IR1"
	mustNode := func(n *Node) {
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(from, to string) {
		if err := d.AddEdge(from, to); err != nil {
			t.Fatal(err)
		}
	}
	mustNode(&Node{Name: "DATASTORE_lineitem", Type: OpDatastore, Optype: "TableInput",
		Fields: []Field{
			{Name: "l_suppkey", Type: "int"},
			{Name: "l_extendedprice", Type: "float"},
			{Name: "l_discount", Type: "float"},
		},
		Params: map[string]string{"store": "tpch", "table": "lineitem"},
	})
	mustNode(&Node{Name: "DATASTORE_supplier", Type: OpDatastore, Optype: "TableInput",
		Fields: []Field{
			{Name: "s_suppkey", Type: "int"},
			{Name: "s_name", Type: "string"},
			{Name: "s_nationkey", Type: "int"},
		},
		Params: map[string]string{"store": "tpch", "table": "supplier"},
	})
	mustNode(&Node{Name: "DATASTORE_nation", Type: OpDatastore, Optype: "TableInput",
		Fields: []Field{
			{Name: "n_nationkey", Type: "int"},
			{Name: "n_name", Type: "string"},
		},
		Params: map[string]string{"store": "tpch", "table": "nation"},
	})
	mustNode(&Node{Name: "EXTRACTION_lineitem", Type: OpExtraction})
	mustNode(&Node{Name: "EXTRACTION_supplier", Type: OpExtraction})
	mustNode(&Node{Name: "EXTRACTION_nation", Type: OpExtraction})
	mustNode(&Node{Name: "JOIN_l_s", Type: OpJoin, Params: map[string]string{"on": "l_suppkey=s_suppkey"}})
	mustNode(&Node{Name: "JOIN_ls_n", Type: OpJoin, Params: map[string]string{"on": "s_nationkey=n_nationkey"}})
	mustNode(&Node{Name: "SELECTION_spain", Type: OpSelection, Params: map[string]string{"predicate": "n_name = 'Spain'"}})
	mustNode(&Node{Name: "FUNCTION_revenue", Type: OpFunction, Params: map[string]string{
		"name": "revenue", "expr": "l_extendedprice * (1 - l_discount)",
	}})
	mustNode(&Node{Name: "AGG_supplier", Type: OpAggregation, Params: map[string]string{
		"group": "s_name", "aggregates": "revenue_sum:SUM:revenue",
	}})
	mustNode(&Node{Name: "LOADER_fact", Type: OpLoader, Optype: "TableOutput", Params: map[string]string{"table": "fact_revenue"}})

	mustEdge("DATASTORE_lineitem", "EXTRACTION_lineitem")
	mustEdge("DATASTORE_supplier", "EXTRACTION_supplier")
	mustEdge("DATASTORE_nation", "EXTRACTION_nation")
	mustEdge("EXTRACTION_lineitem", "JOIN_l_s")
	mustEdge("EXTRACTION_supplier", "JOIN_l_s")
	mustEdge("JOIN_l_s", "JOIN_ls_n")
	mustEdge("EXTRACTION_nation", "JOIN_ls_n")
	mustEdge("JOIN_ls_n", "SELECTION_spain")
	mustEdge("SELECTION_spain", "FUNCTION_revenue")
	mustEdge("FUNCTION_revenue", "AGG_supplier")
	mustEdge("AGG_supplier", "LOADER_fact")
	return d
}

func TestValidateRevenueFlow(t *testing.T) {
	d := revenueFlow(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	agg, _ := d.Node("AGG_supplier")
	names := agg.FieldNames()
	if strings.Join(names, ",") != "s_name,revenue_sum" {
		t.Errorf("aggregation schema = %v", names)
	}
	if f, _ := agg.Field("revenue_sum"); f.Type != "float" {
		t.Errorf("revenue_sum type = %s", f.Type)
	}
	fn, _ := d.Node("FUNCTION_revenue")
	if f, ok := fn.Field("revenue"); !ok || f.Type != "float" {
		t.Errorf("revenue field = %v, %v", f, ok)
	}
	join, _ := d.Node("JOIN_ls_n")
	if len(join.Fields) != 8 {
		t.Errorf("join schema width = %d, want 8", len(join.Fields))
	}
}

func TestTopoSortAndCycle(t *testing.T) {
	d := revenueFlow(t)
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	for _, e := range d.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s→%s violates topological order", e.From, e.To)
		}
	}
	// Force a cycle via the internal edge list.
	d.edges = append(d.edges, Edge{From: "LOADER_fact", To: "DATASTORE_lineitem", Enabled: true})
	if _, err := d.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestSourcesAndSinks(t *testing.T) {
	d := revenueFlow(t)
	if got := len(d.Sources()); got != 3 {
		t.Errorf("sources = %d", got)
	}
	sinks := d.Sinks()
	if len(sinks) != 1 || sinks[0].Name != "LOADER_fact" {
		t.Errorf("sinks = %v", sinks)
	}
}

func TestAddErrors(t *testing.T) {
	d := NewDesign("x")
	if err := d.AddNode(&Node{Name: "", Type: OpSelection}); err == nil {
		t.Error("unnamed node accepted")
	}
	if err := d.AddNode(&Node{Name: "a", Type: "Bogus"}); err == nil {
		t.Error("unknown type accepted")
	}
	d.AddNode(&Node{Name: "a", Type: OpSelection})
	if err := d.AddNode(&Node{Name: "a", Type: OpSelection}); err == nil {
		t.Error("duplicate node accepted")
	}
	d.AddNode(&Node{Name: "b", Type: OpSelection})
	if err := d.AddEdge("a", "ghost"); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := d.AddEdge("ghost", "a"); err == nil {
		t.Error("edge from unknown node accepted")
	}
	if err := d.AddEdge("a", "a"); err == nil {
		t.Error("self edge accepted")
	}
	if err := d.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("a", "b"); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestSchemaInferenceErrors(t *testing.T) {
	type tweak func(d *Design)
	base := func(t *testing.T, f tweak) error {
		d := revenueFlow(t)
		f(d)
		return d.Validate()
	}
	cases := map[string]tweak{
		"selection bad predicate": func(d *Design) {
			n, _ := d.Node("SELECTION_spain")
			n.Params["predicate"] = "n_name +"
		},
		"selection non-bool": func(d *Design) {
			n, _ := d.Node("SELECTION_spain")
			n.Params["predicate"] = "l_discount * 2"
		},
		"selection missing column": func(d *Design) {
			n, _ := d.Node("SELECTION_spain")
			n.Params["predicate"] = "ghost = 1"
		},
		"join missing left column": func(d *Design) {
			n, _ := d.Node("JOIN_l_s")
			n.Params["on"] = "ghost=s_suppkey"
		},
		"join missing right column": func(d *Design) {
			n, _ := d.Node("JOIN_l_s")
			n.Params["on"] = "l_suppkey=ghost"
		},
		"join malformed": func(d *Design) {
			n, _ := d.Node("JOIN_l_s")
			n.Params["on"] = "l_suppkey"
		},
		"join type clash": func(d *Design) {
			n, _ := d.Node("JOIN_l_s")
			n.Params["on"] = "l_suppkey=s_name"
		},
		"function bad expr": func(d *Design) {
			n, _ := d.Node("FUNCTION_revenue")
			n.Params["expr"] = "1 +"
		},
		"function redefines": func(d *Design) {
			n, _ := d.Node("FUNCTION_revenue")
			n.Params["name"] = "l_discount"
		},
		"function no name": func(d *Design) {
			n, _ := d.Node("FUNCTION_revenue")
			delete(n.Params, "name")
		},
		"agg missing group col": func(d *Design) {
			n, _ := d.Node("AGG_supplier")
			n.Params["group"] = "ghost"
		},
		"agg missing input col": func(d *Design) {
			n, _ := d.Node("AGG_supplier")
			n.Params["aggregates"] = "x:SUM:ghost"
		},
		"agg non-numeric": func(d *Design) {
			n, _ := d.Node("AGG_supplier")
			n.Params["aggregates"] = "x:SUM:n_name"
		},
		"agg bad func": func(d *Design) {
			n, _ := d.Node("AGG_supplier")
			n.Params["aggregates"] = "x:MEDIAN:revenue"
		},
		"agg malformed": func(d *Design) {
			n, _ := d.Node("AGG_supplier")
			n.Params["aggregates"] = "x:SUM"
		},
		"agg collision": func(d *Design) {
			n, _ := d.Node("AGG_supplier")
			n.Params["aggregates"] = "s_name:SUM:revenue"
		},
		"loader no table": func(d *Design) {
			n, _ := d.Node("LOADER_fact")
			delete(n.Params, "table")
		},
	}
	for name, f := range cases {
		if err := base(t, f); err == nil {
			t.Errorf("%s: Validate accepted broken design", name)
		}
	}
}

func TestValidateStructuralErrors(t *testing.T) {
	// Empty design.
	if err := NewDesign("x").Validate(); err == nil {
		t.Error("empty design accepted")
	}
	// Unnamed design.
	d := revenueFlow(t)
	d.Name = ""
	if err := d.Validate(); err == nil {
		t.Error("unnamed design accepted")
	}
	// Source that is not a datastore (disconnected selection).
	d = revenueFlow(t)
	d.AddNode(&Node{Name: "orphan", Type: OpSelection, Params: map[string]string{"predicate": "TRUE"}})
	if err := d.Validate(); err == nil {
		t.Error("non-datastore source accepted")
	}
	// Sink that is not a loader: drop the loader.
	d = revenueFlow(t)
	d.RemoveNode("LOADER_fact")
	if err := d.Validate(); err == nil {
		t.Error("non-loader sink accepted")
	}
	// Datastore without schema.
	d = revenueFlow(t)
	ds, _ := d.Node("DATASTORE_nation")
	ds.Fields = nil
	if err := d.Validate(); err == nil {
		t.Error("schema-less datastore accepted")
	}
	// Join with ambiguous output columns.
	d2 := NewDesign("amb")
	d2.AddNode(&Node{Name: "a", Type: OpDatastore, Fields: []Field{{Name: "k", Type: "int"}, {Name: "v", Type: "int"}}})
	d2.AddNode(&Node{Name: "b", Type: OpDatastore, Fields: []Field{{Name: "k", Type: "int"}, {Name: "v", Type: "int"}}})
	d2.AddNode(&Node{Name: "j", Type: OpJoin, Params: map[string]string{"on": "k=k"}})
	d2.AddNode(&Node{Name: "l", Type: OpLoader, Params: map[string]string{"table": "t"}})
	d2.AddEdge("a", "j")
	d2.AddEdge("b", "j")
	d2.AddEdge("j", "l")
	if err := d2.Validate(); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous join columns: %v", err)
	}
}

func TestProjectionAndSortAndSK(t *testing.T) {
	d := NewDesign("proj")
	d.AddNode(&Node{Name: "src", Type: OpDatastore, Fields: []Field{
		{Name: "a", Type: "int"}, {Name: "b", Type: "string"}, {Name: "c", Type: "float"},
	}, Params: map[string]string{"table": "t"}})
	d.AddNode(&Node{Name: "proj", Type: OpProjection, Params: map[string]string{"columns": "x=a, b"}})
	d.AddNode(&Node{Name: "sort", Type: OpSort, Params: map[string]string{"by": "b"}})
	d.AddNode(&Node{Name: "sk", Type: OpSurrogateKey, Params: map[string]string{"key": "row_sk", "on": "b"}})
	d.AddNode(&Node{Name: "load", Type: OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("src", "proj")
	d.AddEdge("proj", "sort")
	d.AddEdge("sort", "sk")
	d.AddEdge("sk", "load")
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sk, _ := d.Node("sk")
	if strings.Join(sk.FieldNames(), ",") != "x,b,row_sk" {
		t.Errorf("sk schema = %v", sk.FieldNames())
	}
	if f, _ := sk.Field("row_sk"); f.Type != "int" {
		t.Errorf("surrogate key type = %s", f.Type)
	}

	// Error branches.
	proj, _ := d.Node("proj")
	proj.Params["columns"] = "x=ghost"
	if err := d.Validate(); err == nil {
		t.Error("projection of missing column accepted")
	}
	proj.Params["columns"] = "x=a, x=b"
	if err := d.Validate(); err == nil {
		t.Error("duplicate projection output accepted")
	}
	proj.Params["columns"] = "x=a, b"
	srt, _ := d.Node("sort")
	srt.Params["by"] = "ghost"
	if err := d.Validate(); err == nil {
		t.Error("sort by missing column accepted")
	}
	srt.Params["by"] = "b"
	skn, _ := d.Node("sk")
	skn.Params["on"] = "ghost"
	if err := d.Validate(); err == nil {
		t.Error("surrogate key on missing column accepted")
	}
	skn.Params["on"] = "b"
	skn.Params["key"] = "b"
	if err := d.Validate(); err == nil {
		t.Error("surrogate key redefining column accepted")
	}
}

func TestUnionSchema(t *testing.T) {
	mk := func(bFields []Field) *Design {
		d := NewDesign("u")
		d.AddNode(&Node{Name: "a", Type: OpDatastore, Fields: []Field{{Name: "k", Type: "int"}}})
		d.AddNode(&Node{Name: "b", Type: OpDatastore, Fields: bFields})
		d.AddNode(&Node{Name: "u", Type: OpUnion})
		d.AddNode(&Node{Name: "l", Type: OpLoader, Params: map[string]string{"table": "t"}})
		d.AddEdge("a", "u")
		d.AddEdge("b", "u")
		d.AddEdge("u", "l")
		return d
	}
	if err := mk([]Field{{Name: "k", Type: "int"}}).Validate(); err != nil {
		t.Errorf("compatible union rejected: %v", err)
	}
	if err := mk([]Field{{Name: "k", Type: "string"}}).Validate(); err == nil {
		t.Error("type-mismatched union accepted")
	}
	if err := mk([]Field{{Name: "k", Type: "int"}, {Name: "x", Type: "int"}}).Validate(); err == nil {
		t.Error("arity-mismatched union accepted")
	}
}

func TestSignatureNormalisesExpressions(t *testing.T) {
	a := &Node{Name: "s1", Type: OpSelection, Params: map[string]string{"predicate": "n_name='Spain'"}}
	b := &Node{Name: "s2", Type: OpSelection, Params: map[string]string{"predicate": "n_name  =   'Spain'"}}
	if a.Signature() != b.Signature() {
		t.Errorf("signatures differ:\n%s\n%s", a.Signature(), b.Signature())
	}
	c := &Node{Name: "s3", Type: OpSelection, Params: map[string]string{"predicate": "n_name = 'France'"}}
	if a.Signature() == c.Signature() {
		t.Error("different predicates share a signature")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := revenueFlow(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	n, _ := c.Node("SELECTION_spain")
	n.Params["predicate"] = "n_name = 'France'"
	n.Fields = nil
	orig, _ := d.Node("SELECTION_spain")
	if orig.Params["predicate"] != "n_name = 'Spain'" {
		t.Error("Clone shares params")
	}
	if len(orig.Fields) == 0 {
		t.Error("Clone shares fields")
	}
	c.RemoveNode("LOADER_fact")
	if _, ok := d.Node("LOADER_fact"); !ok {
		t.Error("Clone shares node list")
	}
}

func TestRemoveNode(t *testing.T) {
	d := revenueFlow(t)
	d.RemoveNode("SELECTION_spain")
	if _, ok := d.Node("SELECTION_spain"); ok {
		t.Error("node still present")
	}
	for _, e := range d.Edges() {
		if e.From == "SELECTION_spain" || e.To == "SELECTION_spain" {
			t.Error("dangling edge")
		}
	}
	// Removing a non-existent node is a no-op.
	before := len(d.Nodes())
	d.RemoveNode("ghost")
	if len(d.Nodes()) != before {
		t.Error("phantom removal changed design")
	}
}

func TestStats(t *testing.T) {
	d := revenueFlow(t)
	s := d.Stats()
	if s.Nodes != 12 || s.Edges != 11 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[OpDatastore] != 3 || s.ByType[OpJoin] != 2 {
		t.Errorf("by type = %+v", s.ByType)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := revenueFlow(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Disable one edge to cover the flag.
	d.edges[0].Enabled = false
	text, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<design", "<from>DATASTORE_lineitem</from>", "<enabled>N</enabled>", "<type>Aggregation</type>", `<param name="predicate">`} {
		if !strings.Contains(text, want) {
			t.Errorf("xLM output missing %q", want)
		}
	}
	d2, err := Unmarshal(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("round-tripped design invalid: %v", err)
	}
	if d2.Metadata["requirement"] != "IR1" {
		t.Error("metadata lost")
	}
	if d2.Stats().Nodes != d.Stats().Nodes || d2.Stats().Edges != d.Stats().Edges {
		t.Error("shape changed")
	}
	if d2.Edges()[0].Enabled {
		t.Error("enabled flag lost")
	}
	// Node-level round trip.
	n1, _ := d.Node("AGG_supplier")
	n2, _ := d2.Node("AGG_supplier")
	if n1.Signature() != n2.Signature() {
		t.Errorf("signature changed:\n%s\n%s", n1.Signature(), n2.Signature())
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"not xml",
		`<design name="x"><nodes><node><name>a</name><type>Bogus</type></node></nodes></design>`,
		`<design name="x"><edges><edge><from>a</from><to>b</to></edge></edges></design>`,
	} {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal accepted %q", src)
		}
	}
}

func TestParamParsers(t *testing.T) {
	n := &Node{Name: "j", Type: OpJoin, Params: map[string]string{"on": "a=b, c=d"}}
	pairs, err := n.JoinPairs()
	if err != nil || len(pairs) != 2 || pairs[1] != [2]string{"c", "d"} {
		t.Errorf("JoinPairs = %v, %v", pairs, err)
	}
	agg := &Node{Name: "g", Type: OpAggregation, Params: map[string]string{
		"group": " a , b ", "aggregates": "s:sum:x; c:COUNT:*",
	}}
	if got := agg.GroupBy(); len(got) != 2 || got[0] != "a" {
		t.Errorf("GroupBy = %v", got)
	}
	specs, err := agg.Aggregates()
	if err != nil || len(specs) != 2 || specs[0].Func != "SUM" || specs[1].Func != "COUNT" {
		t.Errorf("Aggregates = %v, %v", specs, err)
	}
	// COUNT without column.
	cnt := &Node{Name: "c", Type: OpAggregation, Params: map[string]string{"aggregates": "n:COUNT:"}}
	if specs, err := cnt.Aggregates(); err != nil || specs[0].Col != "" {
		t.Errorf("COUNT parse = %v, %v", specs, err)
	}
	sum := &Node{Name: "s", Type: OpAggregation, Params: map[string]string{"aggregates": "n:SUM:"}}
	if _, err := sum.Aggregates(); err == nil {
		t.Error("SUM without column accepted")
	}
}
