package xlm

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The xLM XML dialect follows the paper's Figure 3/4 snippets:
//
//	<design name="etl_revenue">
//	  <metadata>
//	    <entry key="requirement" value="IR1"/>
//	  </metadata>
//	  <edges>
//	    <edge>
//	      <from>DATASTORE_Partsupp</from>
//	      <to>EXTRACTION_Partsupp</to>
//	      <enabled>Y</enabled>
//	    </edge>
//	  </edges>
//	  <nodes>
//	    <node>
//	      <name>DATASTORE_Partsupp</name>
//	      <type>Datastore</type>
//	      <optype>TableInput</optype>
//	      <schema><field name="ps_partkey" type="int"/></schema>
//	      <params><param name="table">partsupp</param></params>
//	    </node>
//	  </nodes>
//	</design>

type xmlDesign struct {
	XMLName  xml.Name   `xml:"design"`
	Name     string     `xml:"name,attr"`
	Metadata []xmlEntry `xml:"metadata>entry"`
	Edges    []xmlEdge  `xml:"edges>edge"`
	Nodes    []xmlNode  `xml:"nodes>node"`
}

type xmlEntry struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xmlEdge struct {
	From    string `xml:"from"`
	To      string `xml:"to"`
	Enabled string `xml:"enabled"`
}

type xmlNode struct {
	Name   string     `xml:"name"`
	Type   string     `xml:"type"`
	Optype string     `xml:"optype,omitempty"`
	Schema []xmlField `xml:"schema>field"`
	Params []xmlParam `xml:"params>param"`
}

type xmlField struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

type xmlParam struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// Write serialises the design as xLM XML with deterministic ordering.
func Write(w io.Writer, d *Design) error {
	doc := xmlDesign{Name: d.Name}
	keys := make([]string, 0, len(d.Metadata))
	for k := range d.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		doc.Metadata = append(doc.Metadata, xmlEntry{Key: k, Value: d.Metadata[k]})
	}
	for _, e := range d.edges {
		enabled := "Y"
		if !e.Enabled {
			enabled = "N"
		}
		doc.Edges = append(doc.Edges, xmlEdge{From: e.From, To: e.To, Enabled: enabled})
	}
	for _, n := range d.nodes {
		xn := xmlNode{Name: n.Name, Type: string(n.Type), Optype: n.Optype}
		for _, f := range n.Fields {
			xn.Schema = append(xn.Schema, xmlField{Name: f.Name, Type: f.Type})
		}
		pkeys := make([]string, 0, len(n.Params))
		for k := range n.Params {
			pkeys = append(pkeys, k)
		}
		sort.Strings(pkeys)
		for _, k := range pkeys {
			xn.Params = append(xn.Params, xmlParam{Name: k, Value: n.Params[k]})
		}
		doc.Nodes = append(doc.Nodes, xn)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xlm: encode: %w", err)
	}
	return enc.Flush()
}

// Marshal returns the xLM XML text of a design.
func Marshal(d *Design) (string, error) {
	var b strings.Builder
	if err := Write(&b, d); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Read parses an xLM document. Call Design.Validate afterwards to
// enforce structural integrity and schema consistency.
func Read(rd io.Reader) (*Design, error) {
	var doc xmlDesign
	if err := xml.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xlm: decode: %w", err)
	}
	d := NewDesign(doc.Name)
	for _, e := range doc.Metadata {
		d.Metadata[e.Key] = e.Value
	}
	for _, xn := range doc.Nodes {
		n := &Node{
			Name:   strings.TrimSpace(xn.Name),
			Type:   OpType(strings.TrimSpace(xn.Type)),
			Optype: strings.TrimSpace(xn.Optype),
			Params: map[string]string{},
		}
		for _, f := range xn.Schema {
			n.Fields = append(n.Fields, Field{Name: f.Name, Type: f.Type})
		}
		for _, p := range xn.Params {
			n.Params[p.Name] = strings.TrimSpace(p.Value)
		}
		if err := d.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, xe := range doc.Edges {
		if err := d.AddEdge(strings.TrimSpace(xe.From), strings.TrimSpace(xe.To)); err != nil {
			return nil, err
		}
		if strings.EqualFold(strings.TrimSpace(xe.Enabled), "N") {
			d.edges[len(d.edges)-1].Enabled = false
		}
	}
	return d, nil
}

// Unmarshal parses xLM XML text.
func Unmarshal(src string) (*Design, error) {
	return Read(strings.NewReader(src))
}
