package xmd

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genSchema builds a random valid constellation.
func genSchema(r *rand.Rand) *Schema {
	s := &Schema{Name: fmt.Sprintf("s%d", r.Intn(100))}
	nDims := 1 + r.Intn(4)
	for d := 0; d < nDims; d++ {
		dim := &Dimension{Name: fmt.Sprintf("D%d", d), Temporal: r.Intn(5) == 0}
		nLevels := 1 + r.Intn(3)
		for l := 0; l < nLevels; l++ {
			lvl := &Level{Name: fmt.Sprintf("L%d_%d", d, l), Concept: fmt.Sprintf("C%d_%d", d, l)}
			for a := 0; a <= r.Intn(3); a++ {
				lvl.Descriptors = append(lvl.Descriptors, Descriptor{
					Name: fmt.Sprintf("a%d", a),
					Type: []string{"int", "float", "string", "bool"}[r.Intn(4)],
					Attr: fmt.Sprintf("%s.a%d", lvl.Concept, a),
				})
			}
			lvl.Key = lvl.Descriptors[0].Name
			dim.Levels = append(dim.Levels, lvl)
			if l > 0 {
				// Chain roll-up: finer (l) → coarser (l-1)? Keep
				// direction 0→1→2 so level 0 stays base.
				dim.Rollups = append(dim.Rollups, Rollup{
					From: fmt.Sprintf("L%d_%d", d, l-1),
					To:   lvl.Name,
				})
			}
		}
		s.Dimensions = append(s.Dimensions, dim)
	}
	nFacts := 1 + r.Intn(2)
	for f := 0; f < nFacts; f++ {
		fact := &Fact{Name: fmt.Sprintf("F%d", f), Concept: fmt.Sprintf("FC%d", f)}
		for m := 0; m <= r.Intn(3); m++ {
			fact.Measures = append(fact.Measures, Measure{
				Name:       fmt.Sprintf("m%d", m),
				Type:       []string{"int", "float"}[r.Intn(2)],
				Additivity: []Additivity{AdditivityFlow, AdditivityStock, AdditivityUnit}[r.Intn(3)],
			})
		}
		// Each fact uses a random non-empty subset of dimensions at
		// their base level.
		used := false
		for d := 0; d < nDims; d++ {
			if r.Intn(2) == 0 || (!used && d == nDims-1) {
				fact.Uses = append(fact.Uses, DimensionUse{
					Dimension: fmt.Sprintf("D%d", d),
					Level:     fmt.Sprintf("L%d_0", d),
				})
				used = true
			}
		}
		s.Facts = append(s.Facts, fact)
	}
	return s
}

// Property: generated schemas validate, and the XML round trip
// preserves validation, stats and roll-up reachability.
func TestQuickSchemaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := genSchema(r)
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: generator invalid: %v", seed, err)
			return false
		}
		text, err := Marshal(s)
		if err != nil {
			return false
		}
		s2, err := Unmarshal(text)
		if err != nil {
			return false
		}
		if err := s2.Validate(); err != nil {
			return false
		}
		if s.Stats() != s2.Stats() {
			return false
		}
		for _, d := range s.Dimensions {
			d2, ok := s2.Dimension(d.Name)
			if !ok {
				return false
			}
			for _, from := range d.Levels {
				for _, to := range d.Levels {
					if d.RollsUpTo(from.Name, to.Name) != d2.RollsUpTo(from.Name, to.Name) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone never aliases — mutating every clone field leaves
// the original validating with unchanged stats.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := genSchema(r)
		before := s.Stats()
		c := s.Clone()
		for _, fct := range c.Facts {
			fct.Name += "_x"
			for i := range fct.Measures {
				fct.Measures[i].Name += "_x"
			}
			for i := range fct.Uses {
				fct.Uses[i].Dimension += "_x"
			}
		}
		for _, d := range c.Dimensions {
			d.Name += "_x"
			for _, l := range d.Levels {
				l.Name += "_x"
				for i := range l.Descriptors {
					l.Descriptors[i].Name += "_x"
				}
			}
			for i := range d.Rollups {
				d.Rollups[i].From += "_x"
			}
		}
		return s.Stats() == before && s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SharedDimensions counts exactly the dimensions used by
// more than one fact.
func TestQuickSharedDimensionsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := genSchema(r)
		count := map[string]int{}
		for _, fct := range s.Facts {
			for _, u := range fct.Uses {
				count[u.Dimension]++
			}
		}
		want := 0
		for _, c := range count {
			if c > 1 {
				want++
			}
		}
		return len(s.SharedDimensions()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
