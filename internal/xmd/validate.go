package xmd

import (
	"fmt"
)

// Validate checks the MD integrity constraints the paper requires of
// every produced design (soundness):
//
//   - structural integrity: unique names, resolvable references, at
//     least one measure per fact, at least one level per dimension;
//   - hierarchy strictness: the roll-up graph of every dimension is
//     acyclic and references existing levels; every fact links to a
//     dimension at one of its base (finest) levels;
//   - typing: measures are numeric with a known additivity class,
//     descriptors have known types, level keys resolve to descriptors.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("xmd: schema has no name")
	}
	dims := map[string]*Dimension{}
	for _, d := range s.Dimensions {
		if d.Name == "" {
			return fmt.Errorf("xmd: unnamed dimension")
		}
		if _, dup := dims[d.Name]; dup {
			return fmt.Errorf("xmd: duplicate dimension %q", d.Name)
		}
		dims[d.Name] = d
		if err := d.validate(); err != nil {
			return err
		}
	}
	facts := map[string]bool{}
	for _, f := range s.Facts {
		if f.Name == "" {
			return fmt.Errorf("xmd: unnamed fact")
		}
		if facts[f.Name] {
			return fmt.Errorf("xmd: duplicate fact %q", f.Name)
		}
		facts[f.Name] = true
		if len(f.Measures) == 0 {
			return fmt.Errorf("xmd: fact %q has no measures", f.Name)
		}
		seenM := map[string]bool{}
		for _, m := range f.Measures {
			if m.Name == "" {
				return fmt.Errorf("xmd: fact %q has an unnamed measure", f.Name)
			}
			if seenM[m.Name] {
				return fmt.Errorf("xmd: fact %q repeats measure %q", f.Name, m.Name)
			}
			seenM[m.Name] = true
			if m.Type != "int" && m.Type != "float" {
				return fmt.Errorf("xmd: measure %s.%s has non-numeric type %q", f.Name, m.Name, m.Type)
			}
			switch m.Additivity {
			case AdditivityFlow, AdditivityStock, AdditivityUnit:
			default:
				return fmt.Errorf("xmd: measure %s.%s has unknown additivity %q", f.Name, m.Name, m.Additivity)
			}
		}
		if len(f.Uses) == 0 {
			return fmt.Errorf("xmd: fact %q uses no dimensions", f.Name)
		}
		seenU := map[string]bool{}
		for _, u := range f.Uses {
			if seenU[u.Dimension] {
				return fmt.Errorf("xmd: fact %q links dimension %q twice", f.Name, u.Dimension)
			}
			seenU[u.Dimension] = true
			d, ok := dims[u.Dimension]
			if !ok {
				return fmt.Errorf("xmd: fact %q uses unknown dimension %q", f.Name, u.Dimension)
			}
			lvl, ok := d.Level(u.Level)
			if !ok {
				return fmt.Errorf("xmd: fact %q links dimension %q at unknown level %q", f.Name, u.Dimension, u.Level)
			}
			// Strictness at the fact boundary: the link must target a
			// base level, otherwise finer data could not populate it
			// unambiguously.
			isBase := false
			for _, b := range d.BaseLevels() {
				if b.Name == lvl.Name {
					isBase = true
					break
				}
			}
			if !isBase {
				return fmt.Errorf("xmd: fact %q links dimension %q at non-base level %q", f.Name, u.Dimension, u.Level)
			}
		}
	}
	return nil
}

func (d *Dimension) validate() error {
	if len(d.Levels) == 0 {
		return fmt.Errorf("xmd: dimension %q has no levels", d.Name)
	}
	levels := map[string]*Level{}
	for _, l := range d.Levels {
		if l.Name == "" {
			return fmt.Errorf("xmd: dimension %q has an unnamed level", d.Name)
		}
		if _, dup := levels[l.Name]; dup {
			return fmt.Errorf("xmd: dimension %q repeats level %q", d.Name, l.Name)
		}
		levels[l.Name] = l
		seenD := map[string]bool{}
		for _, desc := range l.Descriptors {
			if desc.Name == "" {
				return fmt.Errorf("xmd: level %s.%s has an unnamed descriptor", d.Name, l.Name)
			}
			if seenD[desc.Name] {
				return fmt.Errorf("xmd: level %s.%s repeats descriptor %q", d.Name, l.Name, desc.Name)
			}
			seenD[desc.Name] = true
			switch desc.Type {
			case "int", "float", "string", "bool":
			default:
				return fmt.Errorf("xmd: descriptor %s.%s.%s has unknown type %q", d.Name, l.Name, desc.Name, desc.Type)
			}
		}
		if l.Key != "" && !seenD[l.Key] {
			return fmt.Errorf("xmd: level %s.%s key %q is not a descriptor", d.Name, l.Name, l.Key)
		}
	}
	for _, r := range d.Rollups {
		if _, ok := levels[r.From]; !ok {
			return fmt.Errorf("xmd: dimension %q roll-up from unknown level %q", d.Name, r.From)
		}
		if _, ok := levels[r.To]; !ok {
			return fmt.Errorf("xmd: dimension %q roll-up to unknown level %q", d.Name, r.To)
		}
		if r.From == r.To {
			return fmt.Errorf("xmd: dimension %q has a self roll-up on %q", d.Name, r.From)
		}
	}
	if err := d.checkAcyclic(); err != nil {
		return err
	}
	if len(d.BaseLevels()) == 0 {
		return fmt.Errorf("xmd: dimension %q has no base level (roll-up cycle)", d.Name)
	}
	return nil
}

// checkAcyclic verifies hierarchy strictness: roll-ups must form a
// DAG, otherwise aggregation paths are ill-defined.
func (d *Dimension) checkAcyclic() error {
	adj := map[string][]string{}
	for _, r := range d.Rollups {
		adj[r.From] = append(adj[r.From], r.To)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(n string) error {
		color[n] = grey
		for _, m := range adj[n] {
			switch color[m] {
			case grey:
				return fmt.Errorf("xmd: dimension %q has a roll-up cycle through %q", d.Name, m)
			case white:
				if err := visit(m); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, l := range d.Levels {
		if color[l.Name] == white {
			if err := visit(l.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckAggregation verifies summarizability: that aggregating the
// measure with the function along the dimension is meaningful given
// the measure's additivity class [9]. SUM of a stock measure along a
// temporal dimension, and SUM of a value-per-unit measure along any
// dimension, are rejected; AVG/MIN/MAX/COUNT are always safe.
func CheckAggregation(m Measure, fn string, d *Dimension) error {
	switch fn {
	case "SUM":
		switch m.Additivity {
		case AdditivityUnit:
			return fmt.Errorf("xmd: SUM of value-per-unit measure %q is not summarizable", m.Name)
		case AdditivityStock:
			if d != nil && d.Temporal {
				return fmt.Errorf("xmd: SUM of stock measure %q along temporal dimension %q is not summarizable", m.Name, d.Name)
			}
		}
		return nil
	case "AVG", "MIN", "MAX", "COUNT":
		return nil
	default:
		return fmt.Errorf("xmd: unknown aggregation function %q", fn)
	}
}
