// Package xmd implements Quarry's xMD format: the logical,
// platform-independent representation of a multidimensional (MD)
// schema (§2.5). An xMD document is a constellation: fact tables
// carrying measures, dimensions with hierarchies of levels (connected
// by many-to-one roll-up edges) and descriptors, and the fact→dimension
// usage links.
//
// The package also implements the MD integrity constraints the paper
// requires every design to satisfy (soundness, after [9]): structural
// well-formedness, hierarchy strictness (acyclic roll-ups), and the
// summarizability compatibility between measure additivity and
// aggregation functions.
package xmd

import (
	"fmt"
	"sort"
	"strings"
)

// Additivity classifies a measure for summarizability checking,
// following the survey of Mazón et al. [9].
type Additivity string

// Additivity classes.
const (
	// AdditivityFlow marks fully additive measures (e.g. revenue):
	// summable along every dimension.
	AdditivityFlow Additivity = "flow"
	// AdditivityStock marks semi-additive measures (e.g. inventory
	// level): summable along every dimension except temporal ones.
	AdditivityStock Additivity = "stock"
	// AdditivityUnit marks non-additive, value-per-unit measures
	// (e.g. unit price, percentages): never summable.
	AdditivityUnit Additivity = "value-per-unit"
)

// ParseAdditivity parses an additivity class name.
func ParseAdditivity(s string) (Additivity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "flow", "additive", "":
		return AdditivityFlow, nil
	case "stock", "semi-additive":
		return AdditivityStock, nil
	case "value-per-unit", "unit", "non-additive":
		return AdditivityUnit, nil
	default:
		return "", fmt.Errorf("xmd: unknown additivity %q", s)
	}
}

// Measure is a numeric fact attribute.
type Measure struct {
	Name       string
	Type       string // "int" or "float"
	Formula    string // derivation over qualified ontology attributes
	Additivity Additivity
}

// Descriptor is a level attribute.
type Descriptor struct {
	Name string
	Type string
	Attr string // qualified ontology attribute, e.g. "Part.p_name"
}

// Level is one aggregation level of a dimension hierarchy.
type Level struct {
	Name        string
	Concept     string // ontology anchor
	Key         string // descriptor name serving as the level's natural key
	Descriptors []Descriptor
}

// Descriptor looks a descriptor up by name.
func (l *Level) Descriptor(name string) (Descriptor, bool) {
	for _, d := range l.Descriptors {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// Rollup is a many-to-one edge from a finer level to a coarser one.
type Rollup struct {
	From string
	To   string
}

// Dimension is an analysis dimension: a set of levels organised in a
// (possibly branching) roll-up hierarchy.
type Dimension struct {
	Name string
	// Temporal marks time-like dimensions, which restrict stock
	// measures' summarizability.
	Temporal bool
	Levels   []*Level
	Rollups  []Rollup
}

// Level looks a level up by name.
func (d *Dimension) Level(name string) (*Level, bool) {
	for _, l := range d.Levels {
		if l.Name == name {
			return l, true
		}
	}
	return nil, false
}

// BaseLevels returns the finest levels: those no other level rolls up
// into them from below — i.e. levels that never appear as the To of a
// roll-up... base levels are those that are not the target of any
// roll-up arrow, since arrows point finer→coarser.
func (d *Dimension) BaseLevels() []*Level {
	isTarget := map[string]bool{}
	for _, r := range d.Rollups {
		isTarget[r.To] = true
	}
	var out []*Level
	for _, l := range d.Levels {
		if !isTarget[l.Name] {
			out = append(out, l)
		}
	}
	return out
}

// RollsUpTo reports whether from reaches to through the transitive
// closure of roll-up edges (reflexive).
func (d *Dimension) RollsUpTo(from, to string) bool {
	if from == to {
		return true
	}
	adj := map[string][]string{}
	for _, r := range d.Rollups {
		adj[r.From] = append(adj[r.From], r.To)
	}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range adj[cur] {
			if nxt == to {
				return true
			}
			if !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return false
}

// DimensionUse links a fact to a dimension at a base level.
type DimensionUse struct {
	Dimension string
	Level     string
}

// Fact is a fact table: measures plus dimension usages.
type Fact struct {
	Name     string
	Concept  string // ontology anchor of the subject of analysis
	Measures []Measure
	Uses     []DimensionUse
}

// Measure looks a measure up by name.
func (f *Fact) Measure(name string) (Measure, bool) {
	for _, m := range f.Measures {
		if m.Name == name {
			return m, true
		}
	}
	return Measure{}, false
}

// UsesDimension reports whether the fact links to the dimension.
func (f *Fact) UsesDimension(dim string) bool {
	for _, u := range f.Uses {
		if u.Dimension == dim {
			return true
		}
	}
	return false
}

// Schema is a full MD schema (star or constellation).
type Schema struct {
	Name       string
	Facts      []*Fact
	Dimensions []*Dimension
}

// Fact looks a fact up by name.
func (s *Schema) Fact(name string) (*Fact, bool) {
	for _, f := range s.Facts {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Dimension looks a dimension up by name.
func (s *Schema) Dimension(name string) (*Dimension, bool) {
	for _, d := range s.Dimensions {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// SharedDimensions returns the names of dimensions used by more than
// one fact — the conformed dimensions of the constellation.
func (s *Schema) SharedDimensions() []string {
	count := map[string]int{}
	for _, f := range s.Facts {
		seen := map[string]bool{}
		for _, u := range f.Uses {
			if !seen[u.Dimension] {
				seen[u.Dimension] = true
				count[u.Dimension]++
			}
		}
	}
	var out []string
	for d, c := range count {
		if c > 1 {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the schema; the integrators mutate
// copies, never their inputs.
func (s *Schema) Clone() *Schema {
	cp := &Schema{Name: s.Name}
	for _, f := range s.Facts {
		nf := &Fact{Name: f.Name, Concept: f.Concept}
		nf.Measures = append([]Measure(nil), f.Measures...)
		nf.Uses = append([]DimensionUse(nil), f.Uses...)
		cp.Facts = append(cp.Facts, nf)
	}
	for _, d := range s.Dimensions {
		nd := &Dimension{Name: d.Name, Temporal: d.Temporal}
		for _, l := range d.Levels {
			nl := &Level{Name: l.Name, Concept: l.Concept, Key: l.Key}
			nl.Descriptors = append([]Descriptor(nil), l.Descriptors...)
			nd.Levels = append(nd.Levels, nl)
		}
		nd.Rollups = append([]Rollup(nil), d.Rollups...)
		cp.Dimensions = append(cp.Dimensions, nd)
	}
	return cp
}

// Stats summarises schema size for the structural-complexity cost
// model.
type Stats struct {
	Facts       int
	Dimensions  int
	Levels      int
	Descriptors int
	Rollups     int
	Measures    int
	Uses        int
	SharedDims  int
}

// Stats computes size statistics.
func (s *Schema) Stats() Stats {
	st := Stats{Facts: len(s.Facts), Dimensions: len(s.Dimensions), SharedDims: len(s.SharedDimensions())}
	for _, f := range s.Facts {
		st.Measures += len(f.Measures)
		st.Uses += len(f.Uses)
	}
	for _, d := range s.Dimensions {
		st.Levels += len(d.Levels)
		st.Rollups += len(d.Rollups)
		for _, l := range d.Levels {
			st.Descriptors += len(l.Descriptors)
		}
	}
	return st
}
