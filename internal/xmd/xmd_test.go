package xmd

import (
	"strings"
	"testing"
)

// revenueStar is the unified design of the paper's Figure 3: a revenue
// fact over Part, Supplier and Orders(date) dimensions, with Part and
// Supplier rolling up geographically.
func revenueStar() *Schema {
	return &Schema{
		Name: "demo",
		Facts: []*Fact{{
			Name:    "fact_table_revenue",
			Concept: "Lineitem",
			Measures: []Measure{{
				Name: "revenue", Type: "float", Additivity: AdditivityFlow,
				Formula: "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
			}},
			Uses: []DimensionUse{
				{Dimension: "Part", Level: "Part"},
				{Dimension: "Supplier", Level: "Supplier"},
			},
		}},
		Dimensions: []*Dimension{
			{
				Name: "Part",
				Levels: []*Level{{
					Name: "Part", Concept: "Part", Key: "p_name",
					Descriptors: []Descriptor{{Name: "p_name", Type: "string", Attr: "Part.p_name"}},
				}},
			},
			{
				Name: "Supplier",
				Levels: []*Level{
					{
						Name: "Supplier", Concept: "Supplier", Key: "s_name",
						Descriptors: []Descriptor{{Name: "s_name", Type: "string", Attr: "Supplier.s_name"}},
					},
					{
						Name: "Nation", Concept: "Nation", Key: "n_name",
						Descriptors: []Descriptor{{Name: "n_name", Type: "string", Attr: "Nation.n_name"}},
					},
					{
						Name: "Region", Concept: "Region", Key: "r_name",
						Descriptors: []Descriptor{{Name: "r_name", Type: "string", Attr: "Region.r_name"}},
					},
				},
				Rollups: []Rollup{
					{From: "Supplier", To: "Nation"},
					{From: "Nation", To: "Region"},
				},
			},
		},
	}
}

func TestValidateStar(t *testing.T) {
	s := revenueStar()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]func(s *Schema){
		"no name":           func(s *Schema) { s.Name = "" },
		"dup fact":          func(s *Schema) { s.Facts = append(s.Facts, s.Facts[0]) },
		"unnamed fact":      func(s *Schema) { s.Facts[0].Name = "" },
		"no measures":       func(s *Schema) { s.Facts[0].Measures = nil },
		"unnamed measure":   func(s *Schema) { s.Facts[0].Measures[0].Name = "" },
		"dup measure":       func(s *Schema) { s.Facts[0].Measures = append(s.Facts[0].Measures, s.Facts[0].Measures[0]) },
		"string measure":    func(s *Schema) { s.Facts[0].Measures[0].Type = "string" },
		"bad additivity":    func(s *Schema) { s.Facts[0].Measures[0].Additivity = "sometimes" },
		"no uses":           func(s *Schema) { s.Facts[0].Uses = nil },
		"dup use":           func(s *Schema) { s.Facts[0].Uses = append(s.Facts[0].Uses, s.Facts[0].Uses[0]) },
		"unknown dim":       func(s *Schema) { s.Facts[0].Uses[0].Dimension = "Ghost" },
		"unknown level":     func(s *Schema) { s.Facts[0].Uses[0].Level = "Ghost" },
		"non-base link":     func(s *Schema) { s.Facts[0].Uses[1].Level = "Nation" },
		"dup dimension":     func(s *Schema) { s.Dimensions = append(s.Dimensions, s.Dimensions[0]) },
		"unnamed dimension": func(s *Schema) { s.Dimensions[0].Name = "" },
		"no levels":         func(s *Schema) { s.Dimensions[0].Levels = nil },
		"dup level":         func(s *Schema) { d := s.Dimensions[1]; d.Levels = append(d.Levels, d.Levels[0]) },
		"unnamed level":     func(s *Schema) { s.Dimensions[0].Levels[0].Name = "" },
		"dup descriptor": func(s *Schema) {
			l := s.Dimensions[0].Levels[0]
			l.Descriptors = append(l.Descriptors, l.Descriptors[0])
		},
		"bad descriptor type": func(s *Schema) { s.Dimensions[0].Levels[0].Descriptors[0].Type = "blob" },
		"key not descriptor":  func(s *Schema) { s.Dimensions[0].Levels[0].Key = "ghost" },
		"rollup from ghost":   func(s *Schema) { s.Dimensions[1].Rollups[0].From = "Ghost" },
		"rollup to ghost":     func(s *Schema) { s.Dimensions[1].Rollups[0].To = "Ghost" },
		"self rollup":         func(s *Schema) { s.Dimensions[1].Rollups[0] = Rollup{From: "Nation", To: "Nation"} },
		"rollup cycle": func(s *Schema) {
			s.Dimensions[1].Rollups = append(s.Dimensions[1].Rollups, Rollup{From: "Region", To: "Supplier"})
		},
	}
	for name, breakIt := range cases {
		s := revenueStar()
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken schema", name)
		}
	}
}

func TestBaseLevelsAndRollsUpTo(t *testing.T) {
	s := revenueStar()
	d, _ := s.Dimension("Supplier")
	base := d.BaseLevels()
	if len(base) != 1 || base[0].Name != "Supplier" {
		t.Fatalf("BaseLevels = %v", base)
	}
	if !d.RollsUpTo("Supplier", "Region") {
		t.Error("Supplier should roll up to Region")
	}
	if !d.RollsUpTo("Nation", "Nation") {
		t.Error("RollsUpTo should be reflexive")
	}
	if d.RollsUpTo("Region", "Supplier") {
		t.Error("Region must not roll down")
	}
}

func TestSharedDimensions(t *testing.T) {
	s := revenueStar()
	if got := s.SharedDimensions(); len(got) != 0 {
		t.Fatalf("single fact shares dims: %v", got)
	}
	// Add a second fact sharing Part.
	s.Facts = append(s.Facts, &Fact{
		Name: "fact_table_netprofit", Concept: "Partsupp",
		Measures: []Measure{{Name: "netprofit", Type: "float", Additivity: AdditivityFlow}},
		Uses:     []DimensionUse{{Dimension: "Part", Level: "Part"}},
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("constellation invalid: %v", err)
	}
	got := s.SharedDimensions()
	if len(got) != 1 || got[0] != "Part" {
		t.Errorf("SharedDimensions = %v", got)
	}
}

func TestCheckAggregation(t *testing.T) {
	flow := Measure{Name: "revenue", Additivity: AdditivityFlow}
	stock := Measure{Name: "inventory", Additivity: AdditivityStock}
	unit := Measure{Name: "unit_price", Additivity: AdditivityUnit}
	temporal := &Dimension{Name: "Time", Temporal: true}
	geo := &Dimension{Name: "Region"}

	if err := CheckAggregation(flow, "SUM", temporal); err != nil {
		t.Errorf("flow SUM temporal: %v", err)
	}
	if err := CheckAggregation(stock, "SUM", geo); err != nil {
		t.Errorf("stock SUM non-temporal: %v", err)
	}
	if err := CheckAggregation(stock, "SUM", temporal); err == nil {
		t.Error("stock SUM along temporal accepted")
	}
	if err := CheckAggregation(stock, "AVG", temporal); err != nil {
		t.Errorf("stock AVG temporal: %v", err)
	}
	if err := CheckAggregation(unit, "SUM", geo); err == nil {
		t.Error("value-per-unit SUM accepted")
	}
	if err := CheckAggregation(unit, "MIN", geo); err != nil {
		t.Errorf("unit MIN: %v", err)
	}
	if err := CheckAggregation(flow, "MEDIAN", geo); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := revenueStar()
	c := s.Clone()
	c.Facts[0].Measures[0].Name = "changed"
	c.Dimensions[1].Levels[0].Descriptors[0].Name = "changed"
	c.Dimensions[1].Rollups[0].From = "changed"
	if s.Facts[0].Measures[0].Name == "changed" ||
		s.Dimensions[1].Levels[0].Descriptors[0].Name == "changed" ||
		s.Dimensions[1].Rollups[0].From == "changed" {
		t.Error("Clone shares state with original")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("original corrupted: %v", err)
	}
}

func TestStats(t *testing.T) {
	s := revenueStar()
	st := s.Stats()
	want := Stats{Facts: 1, Dimensions: 2, Levels: 4, Descriptors: 4, Rollups: 2, Measures: 1, Uses: 2, SharedDims: 0}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	s := revenueStar()
	s.Dimensions = append(s.Dimensions, &Dimension{
		Name: "Time", Temporal: true,
		Levels: []*Level{{Name: "Day", Concept: "Orders", Key: "o_orderdate",
			Descriptors: []Descriptor{{Name: "o_orderdate", Type: "string", Attr: "Orders.o_orderdate"}}}},
	})
	s.Facts[0].Uses = append(s.Facts[0].Uses, DimensionUse{Dimension: "Time", Level: "Day"})
	text, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<MDschema", "fact_table_revenue", `additivity="flow"`, `temporal="true"`, `<rollup from="Supplier" to="Nation">`} {
		if !strings.Contains(text, want) {
			t.Errorf("xMD output missing %q", want)
		}
	}
	s2, err := Unmarshal(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("round-tripped schema invalid: %v", err)
	}
	if s.Stats() != s2.Stats() {
		t.Errorf("stats changed: %+v vs %+v", s.Stats(), s2.Stats())
	}
	d2, ok := s2.Dimension("Time")
	if !ok || !d2.Temporal {
		t.Error("temporal flag lost")
	}
	f2, _ := s2.Fact("fact_table_revenue")
	if f2.Concept != "Lineitem" {
		t.Errorf("concept lost: %q", f2.Concept)
	}
	m2, ok := f2.Measure("revenue")
	if !ok || m2.Formula != s.Facts[0].Measures[0].Formula {
		t.Errorf("formula changed: %q", m2.Formula)
	}
}

func TestReadDefaultsAdditivity(t *testing.T) {
	src := `<MDschema name="x"><facts><fact><name>f</name>
	  <measures><measure name="m" type="float"/></measures>
	  <uses><use dimension="D" level="L"/></uses></fact></facts>
	  <dimensions><dimension name="D"><level name="L"/></dimension></dimensions>
	</MDschema>`
	s, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Facts[0].Measures[0].Additivity != AdditivityFlow {
		t.Errorf("default additivity = %q", s.Facts[0].Measures[0].Additivity)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("minimal schema invalid: %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"not xml",
		`<MDschema name="x"><facts><fact><name>f</name><measures><measure name="m" type="float" additivity="bogus"/></measures></fact></facts></MDschema>`,
	} {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal accepted %q", src)
		}
	}
}

func TestLookups(t *testing.T) {
	s := revenueStar()
	if _, ok := s.Fact("fact_table_revenue"); !ok {
		t.Error("Fact lookup failed")
	}
	if _, ok := s.Fact("nope"); ok {
		t.Error("Fact false positive")
	}
	d, ok := s.Dimension("Supplier")
	if !ok {
		t.Fatal("Dimension lookup failed")
	}
	l, ok := d.Level("Nation")
	if !ok || l.Concept != "Nation" {
		t.Error("Level lookup failed")
	}
	if _, ok := l.Descriptor("n_name"); !ok {
		t.Error("Descriptor lookup failed")
	}
	if _, ok := l.Descriptor("nope"); ok {
		t.Error("Descriptor false positive")
	}
	f, _ := s.Fact("fact_table_revenue")
	if !f.UsesDimension("Part") || f.UsesDimension("Ghost") {
		t.Error("UsesDimension wrong")
	}
}

func TestParseAdditivity(t *testing.T) {
	for in, want := range map[string]Additivity{
		"":     AdditivityFlow,
		"flow": AdditivityFlow, "additive": AdditivityFlow,
		"stock": AdditivityStock, "semi-additive": AdditivityStock,
		"value-per-unit": AdditivityUnit, "unit": AdditivityUnit, "non-additive": AdditivityUnit,
	} {
		got, err := ParseAdditivity(in)
		if err != nil || got != want {
			t.Errorf("ParseAdditivity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAdditivity("bogus"); err == nil {
		t.Error("bogus additivity accepted")
	}
}

func TestMultipleHierarchiesShareBase(t *testing.T) {
	// A dimension with two branches (Part→Brand, Part→Category) has a
	// single base level and two roll-up paths; it must validate.
	d := &Dimension{
		Name: "Part",
		Levels: []*Level{
			{Name: "Part"}, {Name: "Brand"}, {Name: "Category"},
		},
		Rollups: []Rollup{{From: "Part", To: "Brand"}, {From: "Part", To: "Category"}},
	}
	s := &Schema{
		Name:       "multi",
		Facts:      []*Fact{{Name: "f", Measures: []Measure{{Name: "m", Type: "int", Additivity: AdditivityFlow}}, Uses: []DimensionUse{{Dimension: "Part", Level: "Part"}}}},
		Dimensions: []*Dimension{d},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("branching hierarchy rejected: %v", err)
	}
	if !d.RollsUpTo("Part", "Category") || d.RollsUpTo("Brand", "Category") {
		t.Error("rollup closure wrong")
	}
}
