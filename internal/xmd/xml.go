package xmd

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// The xMD XML dialect follows the paper's Figure 3/4 snippets:
//
//	<MDschema name="demo">
//	  <facts>
//	    <fact>
//	      <name>fact_table_revenue</name>
//	      <concept>Lineitem</concept>
//	      <measures>
//	        <measure name="revenue" type="float" additivity="flow">
//	          <formula>Lineitem.l_extendedprice * (1 - Lineitem.l_discount)</formula>
//	        </measure>
//	      </measures>
//	      <uses>
//	        <use dimension="Part" level="Part"/>
//	      </uses>
//	    </fact>
//	  </facts>
//	  <dimensions>
//	    <dimension name="Part">
//	      <level name="Part" concept="Part" key="p_name">
//	        <descriptor name="p_name" type="string" attr="Part.p_name"/>
//	      </level>
//	      <rollup from="Part" to="Brand"/>
//	    </dimension>
//	  </dimensions>
//	</MDschema>

type xmlSchema struct {
	XMLName    xml.Name       `xml:"MDschema"`
	Name       string         `xml:"name,attr"`
	Facts      []xmlFact      `xml:"facts>fact"`
	Dimensions []xmlDimension `xml:"dimensions>dimension"`
}

type xmlFact struct {
	Name     string       `xml:"name"`
	Concept  string       `xml:"concept,omitempty"`
	Measures []xmlMeasure `xml:"measures>measure"`
	Uses     []xmlUse     `xml:"uses>use"`
}

type xmlMeasure struct {
	Name       string `xml:"name,attr"`
	Type       string `xml:"type,attr"`
	Additivity string `xml:"additivity,attr,omitempty"`
	Formula    string `xml:"formula,omitempty"`
}

type xmlUse struct {
	Dimension string `xml:"dimension,attr"`
	Level     string `xml:"level,attr"`
}

type xmlDimension struct {
	Name     string      `xml:"name,attr"`
	Temporal bool        `xml:"temporal,attr,omitempty"`
	Levels   []xmlLevel  `xml:"level"`
	Rollups  []xmlRollup `xml:"rollup"`
}

type xmlLevel struct {
	Name        string          `xml:"name,attr"`
	Concept     string          `xml:"concept,attr,omitempty"`
	Key         string          `xml:"key,attr,omitempty"`
	Descriptors []xmlDescriptor `xml:"descriptor"`
}

type xmlDescriptor struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
	Attr string `xml:"attr,attr,omitempty"`
}

type xmlRollup struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

// Write serialises the schema as xMD XML.
func Write(w io.Writer, s *Schema) error {
	doc := xmlSchema{Name: s.Name}
	for _, f := range s.Facts {
		xf := xmlFact{Name: f.Name, Concept: f.Concept}
		for _, m := range f.Measures {
			xf.Measures = append(xf.Measures, xmlMeasure{
				Name: m.Name, Type: m.Type, Additivity: string(m.Additivity), Formula: m.Formula,
			})
		}
		for _, u := range f.Uses {
			xf.Uses = append(xf.Uses, xmlUse{Dimension: u.Dimension, Level: u.Level})
		}
		doc.Facts = append(doc.Facts, xf)
	}
	for _, d := range s.Dimensions {
		xd := xmlDimension{Name: d.Name, Temporal: d.Temporal}
		for _, l := range d.Levels {
			xl := xmlLevel{Name: l.Name, Concept: l.Concept, Key: l.Key}
			for _, desc := range l.Descriptors {
				xl.Descriptors = append(xl.Descriptors, xmlDescriptor{Name: desc.Name, Type: desc.Type, Attr: desc.Attr})
			}
			xd.Levels = append(xd.Levels, xl)
		}
		for _, r := range d.Rollups {
			xd.Rollups = append(xd.Rollups, xmlRollup{From: r.From, To: r.To})
		}
		doc.Dimensions = append(doc.Dimensions, xd)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmd: encode: %w", err)
	}
	return enc.Flush()
}

// Marshal returns the xMD XML text of a schema.
func Marshal(s *Schema) (string, error) {
	var b strings.Builder
	if err := Write(&b, s); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Read parses an xMD document. Call Schema.Validate afterwards to
// enforce the MD integrity constraints.
func Read(rd io.Reader) (*Schema, error) {
	var doc xmlSchema
	if err := xml.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmd: decode: %w", err)
	}
	s := &Schema{Name: doc.Name}
	for _, xf := range doc.Facts {
		f := &Fact{Name: strings.TrimSpace(xf.Name), Concept: strings.TrimSpace(xf.Concept)}
		for _, xm := range xf.Measures {
			add, err := ParseAdditivity(xm.Additivity)
			if err != nil {
				return nil, err
			}
			f.Measures = append(f.Measures, Measure{
				Name: xm.Name, Type: xm.Type, Additivity: add, Formula: strings.TrimSpace(xm.Formula),
			})
		}
		for _, xu := range xf.Uses {
			f.Uses = append(f.Uses, DimensionUse{Dimension: xu.Dimension, Level: xu.Level})
		}
		s.Facts = append(s.Facts, f)
	}
	for _, xd := range doc.Dimensions {
		d := &Dimension{Name: xd.Name, Temporal: xd.Temporal}
		for _, xl := range xd.Levels {
			l := &Level{Name: xl.Name, Concept: xl.Concept, Key: xl.Key}
			for _, xdesc := range xl.Descriptors {
				l.Descriptors = append(l.Descriptors, Descriptor{Name: xdesc.Name, Type: xdesc.Type, Attr: xdesc.Attr})
			}
			d.Levels = append(d.Levels, l)
		}
		for _, xr := range xd.Rollups {
			d.Rollups = append(d.Rollups, Rollup{From: xr.From, To: xr.To})
		}
		s.Dimensions = append(s.Dimensions, d)
	}
	return s, nil
}

// Unmarshal parses xMD XML text.
func Unmarshal(src string) (*Schema, error) {
	return Read(strings.NewReader(src))
}
