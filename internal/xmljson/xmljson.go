// Package xmljson implements the generic XML-JSON-XML parser of
// Quarry's Communication & Metadata layer (§2.6): the paper stores
// the XML-based logical formats (xRQ, xMD, xLM) in a JSON document
// repository, converting on the way in and out.
//
// XML maps to JSON as follows: an element becomes an object; its
// attributes become "@name" keys; its character data becomes "#text";
// child elements become keys named after their tag — a single child
// maps to an object, repeated children to an array. The reverse
// conversion emits attributes, text, then children (child tags in
// sorted order, so output is deterministic; sibling order among
// same-tag children is preserved through the array).
package xmljson

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Doc is a decoded document: map of root tag → element object.
type Doc = map[string]any

// Decode parses XML into its JSON-shaped representation.
func Decode(r io.Reader) (Doc, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmljson: no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("xmljson: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		elem, err := decodeElement(dec, start)
		if err != nil {
			return nil, err
		}
		return Doc{start.Name.Local: elem}, nil
	}
}

// DecodeString parses an XML string.
func DecodeString(src string) (Doc, error) {
	return Decode(strings.NewReader(src))
}

func decodeElement(dec *xml.Decoder, start xml.StartElement) (map[string]any, error) {
	obj := map[string]any{}
	for _, a := range start.Attr {
		obj["@"+a.Name.Local] = a.Value
	}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmljson: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := decodeElement(dec, t)
			if err != nil {
				return nil, err
			}
			name := t.Name.Local
			switch existing := obj[name].(type) {
			case nil:
				obj[name] = child
			case []any:
				obj[name] = append(existing, child)
			case map[string]any:
				obj[name] = []any{existing, child}
			}
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			if s := strings.TrimSpace(text.String()); s != "" {
				obj["#text"] = s
			}
			return obj, nil
		}
	}
}

// Encode renders the JSON-shaped document back to XML.
func Encode(w io.Writer, doc Doc) error {
	if len(doc) != 1 {
		return fmt.Errorf("xmljson: document must have exactly one root, has %d", len(doc))
	}
	var root string
	for k := range doc {
		root = k
	}
	obj, ok := doc[root].(map[string]any)
	if !ok {
		return fmt.Errorf("xmljson: root %q is not an object", root)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := encodeElement(enc, root, obj); err != nil {
		return err
	}
	return enc.Flush()
}

// EncodeString renders the document to an XML string.
func EncodeString(doc Doc) (string, error) {
	var b strings.Builder
	if err := Encode(&b, doc); err != nil {
		return "", err
	}
	return b.String(), nil
}

func encodeElement(enc *xml.Encoder, name string, obj map[string]any) error {
	start := xml.StartElement{Name: xml.Name{Local: name}}
	var attrKeys []string
	for k := range obj {
		if strings.HasPrefix(k, "@") {
			attrKeys = append(attrKeys, k)
		}
	}
	sort.Strings(attrKeys)
	for _, k := range attrKeys {
		v, ok := obj[k].(string)
		if !ok {
			return fmt.Errorf("xmljson: attribute %s of <%s> is not a string", k, name)
		}
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: k[1:]}, Value: v})
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if txt, ok := obj["#text"].(string); ok {
		if err := enc.EncodeToken(xml.CharData(txt)); err != nil {
			return err
		}
	}
	var childKeys []string
	for k := range obj {
		if !strings.HasPrefix(k, "@") && k != "#text" {
			childKeys = append(childKeys, k)
		}
	}
	sort.Strings(childKeys)
	for _, k := range childKeys {
		switch v := obj[k].(type) {
		case map[string]any:
			if err := encodeElement(enc, k, v); err != nil {
				return err
			}
		case []any:
			for _, item := range v {
				child, ok := item.(map[string]any)
				if !ok {
					return fmt.Errorf("xmljson: array child %s of <%s> is not an object", k, name)
				}
				if err := encodeElement(enc, k, child); err != nil {
					return err
				}
			}
		case string:
			// Convenience: plain string children encode as
			// <k>text</k>.
			if err := encodeElement(enc, k, map[string]any{"#text": v}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("xmljson: child %s of <%s> has unsupported type %T", k, name, v)
		}
	}
	return enc.EncodeToken(xml.EndElement{Name: xml.Name{Local: name}})
}

// Equal compares two decoded documents structurally.
func Equal(a, b any) bool {
	switch x := a.(type) {
	case map[string]any:
		y, ok := b.(map[string]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if !Equal(v, y[k]) {
				return false
			}
		}
		return true
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
