package xmljson

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeBasic(t *testing.T) {
	doc, err := DecodeString(`<design name="etl">
	  <metadata><entry key="a" value="1"/></metadata>
	  <edges>
	    <edge><from>A</from><to>B</to></edge>
	    <edge><from>B</from><to>C</to></edge>
	  </edges>
	</design>`)
	if err != nil {
		t.Fatal(err)
	}
	design, ok := doc["design"].(map[string]any)
	if !ok {
		t.Fatalf("doc = %v", doc)
	}
	if design["@name"] != "etl" {
		t.Errorf("@name = %v", design["@name"])
	}
	edges := design["edges"].(map[string]any)
	list, ok := edges["edge"].([]any)
	if !ok || len(list) != 2 {
		t.Fatalf("edge list = %v", edges["edge"])
	}
	first := list[0].(map[string]any)
	if first["from"].(map[string]any)["#text"] != "A" {
		t.Errorf("first edge = %v", first)
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, src := range []string{"", "not xml", "<unclosed>"} {
		if _, err := DecodeString(src); err == nil {
			t.Errorf("DecodeString(%q) succeeded", src)
		}
	}
}

func TestEncodeBasic(t *testing.T) {
	doc := Doc{
		"cube": map[string]any{
			"@id": "IR1",
			"measures": map[string]any{
				"concept": []any{
					map[string]any{"@id": "revenue", "function": map[string]any{"#text": "a * b"}},
					map[string]any{"@id": "qty"},
				},
			},
		},
	}
	out, err := EncodeString(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`<cube id="IR1">`, `<concept id="revenue">`, `<function>a * b</function>`, `<concept id="qty">`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Doc{
		{},
		{"a": map[string]any{}, "b": map[string]any{}},
		{"a": "not an object"},
		{"a": map[string]any{"@attr": 42}},
		{"a": map[string]any{"child": 42}},
		{"a": map[string]any{"child": []any{42}}},
	}
	for i, d := range bad {
		if _, err := EncodeString(d); err == nil {
			t.Errorf("bad doc %d encoded", i)
		}
	}
}

func TestPlainStringChildConvenience(t *testing.T) {
	out, err := EncodeString(Doc{"root": map[string]any{"name": "hello"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<name>hello</name>") {
		t.Errorf("output = %s", out)
	}
}

// TestRoundTripSemantics: decode→encode→decode yields a structurally
// equal document (modulo the string-child convenience, not used by
// decoded docs).
func TestRoundTripSemantics(t *testing.T) {
	srcs := []string{
		`<a x="1" y="2"><b>t</b><b>u</b><c><d k="v">deep</d></c></a>`,
		`<design name="n"><nodes><node><name>A</name></node></nodes></design>`,
		`<MDschema name="m"><facts><fact><name>f</name></fact></facts></MDschema>`,
	}
	for _, src := range srcs {
		d1, err := DecodeString(src)
		if err != nil {
			t.Fatal(err)
		}
		xmlText, err := EncodeString(d1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := DecodeString(xmlText)
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v\n%s", src, err, xmlText)
		}
		if !Equal(map[string]any(d1), map[string]any(d2)) {
			t.Errorf("round trip changed %q:\n%#v\nvs\n%#v", src, d1, d2)
		}
	}
}

// genXML builds a random XML document string.
func genXML(r *rand.Rand, depth int) string {
	tag := fmt.Sprintf("t%d", r.Intn(4))
	var b strings.Builder
	b.WriteString("<" + tag)
	for i := 0; i < r.Intn(3); i++ {
		fmt.Fprintf(&b, ` a%d="v%d"`, i, r.Intn(10))
	}
	b.WriteString(">")
	if depth > 0 {
		for i := 0; i < r.Intn(4); i++ {
			b.WriteString(genXML(r, depth-1))
		}
	}
	if r.Intn(2) == 0 {
		fmt.Fprintf(&b, "text%d", r.Intn(100))
	}
	b.WriteString("</" + tag + ">")
	return b.String()
}

// Property: XML→JSON→XML→JSON is a fixpoint after the first
// conversion.
func TestQuickRoundTripFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := "<root>" + genXML(r, 2) + "</root>"
		d1, err := DecodeString(src)
		if err != nil {
			return false
		}
		x1, err := EncodeString(d1)
		if err != nil {
			return false
		}
		d2, err := DecodeString(x1)
		if err != nil {
			return false
		}
		return Equal(map[string]any(d1), map[string]any(d2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := map[string]any{"x": []any{map[string]any{"k": "v"}}}
	b := map[string]any{"x": []any{map[string]any{"k": "v"}}}
	if !Equal(a, b) {
		t.Error("equal docs not equal")
	}
	c := map[string]any{"x": []any{map[string]any{"k": "w"}}}
	if Equal(a, c) {
		t.Error("different docs equal")
	}
	if Equal(a, map[string]any{"x": "v"}) {
		t.Error("shape mismatch equal")
	}
	if Equal([]any{1}, []any{1, 2}) {
		t.Error("length mismatch equal")
	}
}
