package xrq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genRequirement builds a random structurally-complete requirement
// (not necessarily ontology-valid — round-tripping is a format
// property, not a semantic one).
func genRequirement(r *rand.Rand) *Requirement {
	req := &Requirement{
		ID:   fmt.Sprintf("IR_%04d", r.Intn(10000)),
		Name: fmt.Sprintf("random requirement %d", r.Intn(100)),
	}
	dims := []string{"Part.p_name", "Supplier.s_name", "Nation.n_name", "Customer.c_mktsegment"}
	r.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	for i := 0; i <= r.Intn(3); i++ {
		req.Dimensions = append(req.Dimensions, Dimension{Concept: dims[i]})
	}
	formulas := []string{
		"Lineitem.l_quantity",
		"Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
		"ABS(Lineitem.l_tax - 0.5) * 2.0",
	}
	for i := 0; i <= r.Intn(2); i++ {
		req.Measures = append(req.Measures, Measure{
			ID:       fmt.Sprintf("m%d", i),
			Function: formulas[r.Intn(len(formulas))],
		})
	}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for i := 0; i < r.Intn(3); i++ {
		req.Slicers = append(req.Slicers, Slicer{
			Concept:  dims[r.Intn(len(dims))],
			Operator: ops[r.Intn(len(ops))],
			Value:    fmt.Sprintf("value %d", r.Intn(50)),
		})
	}
	fns := []AggFunc{AggSum, AggAvg, AggMin, AggMax, AggCount}
	for i := 0; i < r.Intn(3); i++ {
		req.Aggs = append(req.Aggs, Aggregation{
			Order:     1 + r.Intn(3),
			Dimension: req.Dimensions[r.Intn(len(req.Dimensions))].Concept,
			Measure:   req.Measures[r.Intn(len(req.Measures))].ID,
			Function:  fns[r.Intn(len(fns))],
		})
	}
	return req
}

// Property: the xRQ XML round trip is lossless for every field.
func TestQuickXRQRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		r1 := genRequirement(r)
		text, err := Marshal(r1)
		if err != nil {
			return false
		}
		r2, err := Unmarshal(text)
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, text)
			return false
		}
		if r1.ID != r2.ID || r1.Name != r2.Name {
			return false
		}
		if len(r1.Dimensions) != len(r2.Dimensions) ||
			len(r1.Measures) != len(r2.Measures) ||
			len(r1.Slicers) != len(r2.Slicers) ||
			len(r1.Aggs) != len(r2.Aggs) {
			return false
		}
		for i := range r1.Dimensions {
			if r1.Dimensions[i] != r2.Dimensions[i] {
				return false
			}
		}
		for i := range r1.Measures {
			if r1.Measures[i] != r2.Measures[i] {
				return false
			}
		}
		for i := range r1.Slicers {
			if r1.Slicers[i] != r2.Slicers[i] {
				return false
			}
		}
		for i := range r1.Aggs {
			if r1.Aggs[i] != r2.Aggs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Marshal is deterministic.
func TestQuickXRQMarshalDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := genRequirement(r)
		a, err := Marshal(req)
		if err != nil {
			return false
		}
		b, err := Marshal(req)
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
