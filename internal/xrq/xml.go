package xrq

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// The xRQ XML dialect mirrors the paper's Figure 4 snippet:
//
//	<cube id="IR1" name="revenue per part and supplier">
//	  <dimensions>
//	    <concept id="Part.p_name"/>
//	    <concept id="Supplier.s_name"/>
//	  </dimensions>
//	  <measures>
//	    <concept id="revenue">
//	      <function>Lineitem.l_extendedprice * (1 - Lineitem.l_discount)</function>
//	    </concept>
//	  </measures>
//	  <slicers>
//	    <comparison>
//	      <concept id="Nation.n_name"/>
//	      <operator>=</operator>
//	      <value>Spain</value>
//	    </comparison>
//	  </slicers>
//	  <aggregations>
//	    <aggregation order="1">
//	      <dimension refID="Part.p_name"/>
//	      <measure refID="revenue"/>
//	      <function>AVERAGE</function>
//	    </aggregation>
//	  </aggregations>
//	</cube>

type xmlCube struct {
	XMLName xml.Name  `xml:"cube"`
	ID      string    `xml:"id,attr"`
	Name    string    `xml:"name,attr,omitempty"`
	Dims    []xmlRef  `xml:"dimensions>concept"`
	Meas    []xmlMeas `xml:"measures>concept"`
	Slicers []xmlCmp  `xml:"slicers>comparison"`
	Aggs    []xmlAgg  `xml:"aggregations>aggregation"`
}

type xmlRef struct {
	ID string `xml:"id,attr"`
}

type xmlMeas struct {
	ID       string `xml:"id,attr"`
	Function string `xml:"function"`
}

type xmlCmp struct {
	Concept  xmlRef `xml:"concept"`
	Operator string `xml:"operator"`
	Value    string `xml:"value"`
}

type xmlAgg struct {
	Order     int      `xml:"order,attr"`
	Dimension xmlIDRef `xml:"dimension"`
	Measure   xmlIDRef `xml:"measure"`
	Function  string   `xml:"function"`
}

type xmlIDRef struct {
	RefID string `xml:"refID,attr"`
}

// Write serialises the requirement as xRQ XML.
func Write(w io.Writer, r *Requirement) error {
	doc := xmlCube{ID: r.ID, Name: r.Name}
	for _, d := range r.Dimensions {
		doc.Dims = append(doc.Dims, xmlRef{ID: d.Concept})
	}
	for _, m := range r.Measures {
		doc.Meas = append(doc.Meas, xmlMeas{ID: m.ID, Function: m.Function})
	}
	for _, s := range r.Slicers {
		doc.Slicers = append(doc.Slicers, xmlCmp{Concept: xmlRef{ID: s.Concept}, Operator: s.Operator, Value: s.Value})
	}
	for _, a := range r.Aggs {
		doc.Aggs = append(doc.Aggs, xmlAgg{
			Order:     a.Order,
			Dimension: xmlIDRef{RefID: a.Dimension},
			Measure:   xmlIDRef{RefID: a.Measure},
			Function:  string(a.Function),
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xrq: encode: %w", err)
	}
	return enc.Flush()
}

// Marshal returns the xRQ XML text of a requirement.
func Marshal(r *Requirement) (string, error) {
	var b strings.Builder
	if err := Write(&b, r); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Read parses an xRQ document. The result is structurally complete but
// not yet validated against an ontology; call Requirement.Validate.
func Read(rd io.Reader) (*Requirement, error) {
	var doc xmlCube
	if err := xml.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xrq: decode: %w", err)
	}
	r := &Requirement{ID: doc.ID, Name: doc.Name}
	for _, d := range doc.Dims {
		r.Dimensions = append(r.Dimensions, Dimension{Concept: d.ID})
	}
	for _, m := range doc.Meas {
		r.Measures = append(r.Measures, Measure{ID: m.ID, Function: strings.TrimSpace(m.Function)})
	}
	for _, s := range doc.Slicers {
		r.Slicers = append(r.Slicers, Slicer{
			Concept:  s.Concept.ID,
			Operator: strings.TrimSpace(s.Operator),
			Value:    s.Value,
		})
	}
	for _, a := range doc.Aggs {
		fn, err := ParseAggFunc(a.Function)
		if err != nil {
			return nil, err
		}
		r.Aggs = append(r.Aggs, Aggregation{
			Order:     a.Order,
			Dimension: a.Dimension.RefID,
			Measure:   a.Measure.RefID,
			Function:  fn,
		})
	}
	return r, nil
}

// Unmarshal parses xRQ XML text.
func Unmarshal(src string) (*Requirement, error) {
	return Read(strings.NewReader(src))
}
