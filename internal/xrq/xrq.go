// Package xrq implements Quarry's xRQ format: the logical,
// platform-independent representation of an information requirement
// (§2.5). An xRQ document is an analytical query following the MD
// model — a cube with a subject of analysis (measures), analysis
// dimensions, slicers, and per-dimension aggregations — phrased
// entirely in ontology vocabulary ("Part.p_name", "Nation.n_name"),
// never in physical schema terms.
package xrq

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/expr"
	"quarry/internal/ontology"
)

// AggFunc is a normalised aggregation function name.
type AggFunc string

// Supported aggregation functions.
const (
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggCount AggFunc = "COUNT"
)

// ParseAggFunc normalises an aggregation function name; it accepts
// the long spellings used in the paper's snippets ("AVERAGE").
func ParseAggFunc(s string) (AggFunc, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SUM":
		return AggSum, nil
	case "AVG", "AVERAGE", "MEAN":
		return AggAvg, nil
	case "MIN", "MINIMUM":
		return AggMin, nil
	case "MAX", "MAXIMUM":
		return AggMax, nil
	case "COUNT", "CNT":
		return AggCount, nil
	default:
		return "", fmt.Errorf("xrq: unknown aggregation function %q", s)
	}
}

// Dimension references a qualified ontology attribute to analyse by,
// e.g. "Part.p_name".
type Dimension struct {
	Concept string
}

// Measure is a named numeric expression over qualified ontology
// attributes, e.g. revenue = Lineitem.l_extendedprice * (1 -
// Lineitem.l_discount).
type Measure struct {
	ID       string
	Function string // expression source text
}

// Expr parses the measure formula.
func (m Measure) Expr() (expr.Node, error) {
	n, err := expr.Parse(m.Function)
	if err != nil {
		return nil, fmt.Errorf("xrq: measure %q: %w", m.ID, err)
	}
	return n, nil
}

// Slicer restricts the analysed data: attribute ⋈ literal.
type Slicer struct {
	Concept  string // qualified attribute, e.g. "Nation.n_name"
	Operator string // =, !=, <>, <, <=, >, >=
	Value    string // literal text; strings need no quoting here
}

// Predicate builds the slicer's expression against the attribute's
// declared type (string-typed attributes compare against the raw
// value text; numeric ones parse it).
func (s Slicer) Predicate(attrType string) (expr.Node, error) {
	var lit expr.Node
	switch attrType {
	case "string":
		lit = &expr.Literal{Val: expr.Str(s.Value)}
	case "bool":
		switch strings.ToLower(s.Value) {
		case "true":
			lit = &expr.Literal{Val: expr.Bool(true)}
		case "false":
			lit = &expr.Literal{Val: expr.Bool(false)}
		default:
			return nil, fmt.Errorf("xrq: slicer on %s: bad bool literal %q", s.Concept, s.Value)
		}
	default: // numeric
		n, err := expr.Parse(s.Value)
		if err != nil {
			return nil, fmt.Errorf("xrq: slicer on %s: %w", s.Concept, err)
		}
		if _, isLit := n.(*expr.Literal); !isLit {
			if _, isNeg := n.(*expr.Unary); !isNeg {
				return nil, fmt.Errorf("xrq: slicer on %s: value %q is not a literal", s.Concept, s.Value)
			}
		}
		lit = n
	}
	return expr.CompareOp(s.Operator, &expr.Ident{Name: s.Concept}, lit)
}

// Aggregation says how one measure is aggregated along one dimension.
type Aggregation struct {
	Order     int
	Dimension string // Dimension.Concept reference
	Measure   string // Measure.ID reference
	Function  AggFunc
}

// Requirement is a parsed xRQ document.
type Requirement struct {
	ID         string
	Name       string
	Dimensions []Dimension
	Measures   []Measure
	Slicers    []Slicer
	Aggs       []Aggregation
}

// Dimension returns the dimension with the given concept reference.
func (r *Requirement) Dimension(concept string) (Dimension, bool) {
	for _, d := range r.Dimensions {
		if d.Concept == concept {
			return d, true
		}
	}
	return Dimension{}, false
}

// Measure returns the measure with the given ID.
func (r *Requirement) Measure(id string) (Measure, bool) {
	for _, m := range r.Measures {
		if m.ID == id {
			return m, true
		}
	}
	return Measure{}, false
}

// ReferencedAttributes returns every qualified ontology attribute the
// requirement mentions (dimensions, measure formulas, slicers),
// sorted and de-duplicated.
func (r *Requirement) ReferencedAttributes() ([]string, error) {
	set := map[string]bool{}
	for _, d := range r.Dimensions {
		set[d.Concept] = true
	}
	for _, m := range r.Measures {
		n, err := m.Expr()
		if err != nil {
			return nil, err
		}
		for _, id := range expr.Idents(n) {
			set[id] = true
		}
	}
	for _, s := range r.Slicers {
		set[s.Concept] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// ReferencedConcepts returns the ontology concepts the requirement
// touches, sorted.
func (r *Requirement) ReferencedConcepts() ([]string, error) {
	attrs, err := r.ReferencedAttributes()
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, a := range attrs {
		cid, _, err := ontology.SplitQualified(a)
		if err != nil {
			return nil, err
		}
		set[cid] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Validate checks the requirement's internal consistency and its
// well-formedness against the domain ontology:
//
//   - every referenced qualified attribute resolves in the ontology;
//   - measure formulas are numeric expressions over numeric attributes;
//   - slicer operators fit the sliced attribute's type;
//   - aggregations reference declared dimensions and measures;
//   - at least one measure and one dimension are present.
func (r *Requirement) Validate(onto *ontology.Ontology) error {
	if r.ID == "" {
		return fmt.Errorf("xrq: requirement has no id")
	}
	if len(r.Measures) == 0 {
		return fmt.Errorf("xrq: requirement %q has no measures", r.ID)
	}
	if len(r.Dimensions) == 0 {
		return fmt.Errorf("xrq: requirement %q has no dimensions", r.ID)
	}
	seenDim := map[string]bool{}
	for _, d := range r.Dimensions {
		if seenDim[d.Concept] {
			return fmt.Errorf("xrq: requirement %q repeats dimension %q", r.ID, d.Concept)
		}
		seenDim[d.Concept] = true
		if _, _, err := onto.ResolveQualified(d.Concept); err != nil {
			return fmt.Errorf("xrq: requirement %q dimension: %w", r.ID, err)
		}
	}
	sch := ontologySchema(onto)
	seenMeasure := map[string]bool{}
	for _, m := range r.Measures {
		if m.ID == "" {
			return fmt.Errorf("xrq: requirement %q has an unnamed measure", r.ID)
		}
		if seenMeasure[m.ID] {
			return fmt.Errorf("xrq: requirement %q repeats measure %q", r.ID, m.ID)
		}
		seenMeasure[m.ID] = true
		n, err := m.Expr()
		if err != nil {
			return err
		}
		k, err := expr.Infer(n, sch)
		if err != nil {
			return fmt.Errorf("xrq: requirement %q measure %q: %w", r.ID, m.ID, err)
		}
		if k != expr.KindInt && k != expr.KindFloat {
			return fmt.Errorf("xrq: requirement %q measure %q is %s, want numeric", r.ID, m.ID, k)
		}
	}
	for _, s := range r.Slicers {
		_, p, err := onto.ResolveQualified(s.Concept)
		if err != nil {
			return fmt.Errorf("xrq: requirement %q slicer: %w", r.ID, err)
		}
		pred, err := s.Predicate(p.Type)
		if err != nil {
			return err
		}
		if err := expr.CheckPredicate(pred, sch); err != nil {
			return fmt.Errorf("xrq: requirement %q slicer on %s: %w", r.ID, s.Concept, err)
		}
	}
	for _, a := range r.Aggs {
		if !seenDim[a.Dimension] {
			return fmt.Errorf("xrq: requirement %q aggregation references unknown dimension %q", r.ID, a.Dimension)
		}
		if !seenMeasure[a.Measure] {
			return fmt.Errorf("xrq: requirement %q aggregation references unknown measure %q", r.ID, a.Measure)
		}
		if _, err := ParseAggFunc(string(a.Function)); err != nil {
			return fmt.Errorf("xrq: requirement %q: %w", r.ID, err)
		}
	}
	return nil
}

// AggregationFor returns the aggregation declared for the
// (dimension, measure) pair, defaulting to SUM when unspecified.
func (r *Requirement) AggregationFor(dimension, measure string) AggFunc {
	for _, a := range r.Aggs {
		if a.Dimension == dimension && a.Measure == measure {
			return a.Function
		}
	}
	return AggSum
}

// ontologySchema adapts ontology attribute types to an expr.Schema
// over qualified identifiers.
func ontologySchema(onto *ontology.Ontology) expr.Schema {
	return func(name string) (expr.Kind, bool) {
		_, p, err := onto.ResolveQualified(name)
		if err != nil {
			return expr.KindNull, false
		}
		k, err := expr.ParseKind(p.Type)
		if err != nil {
			return expr.KindNull, false
		}
		return k, true
	}
}

// Clone returns a deep copy of the requirement.
func (r *Requirement) Clone() *Requirement {
	cp := &Requirement{ID: r.ID, Name: r.Name}
	cp.Dimensions = append([]Dimension(nil), r.Dimensions...)
	cp.Measures = append([]Measure(nil), r.Measures...)
	cp.Slicers = append([]Slicer(nil), r.Slicers...)
	cp.Aggs = append([]Aggregation(nil), r.Aggs...)
	return cp
}
