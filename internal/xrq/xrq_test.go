package xrq

import (
	"strings"
	"testing"

	"quarry/internal/ontology"
)

func tpchOnto(t *testing.T) *ontology.Ontology {
	t.Helper()
	o := ontology.New("tpch")
	add := func(id string, props ...[2]string) {
		o.AddConcept(id, id)
		for _, p := range props {
			if err := o.AddProperty(id, p[0], p[1], ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("Lineitem", [2]string{"l_extendedprice", "float"}, [2]string{"l_discount", "float"}, [2]string{"l_quantity", "float"})
	add("Part", [2]string{"p_name", "string"})
	add("Supplier", [2]string{"s_name", "string"})
	add("Nation", [2]string{"n_name", "string"})
	return o
}

// revenueIR is the requirement of the paper's Figure 4: average
// revenue per part and supplier, for parts ordered from Spain.
func revenueIR() *Requirement {
	return &Requirement{
		ID:   "IR1",
		Name: "revenue per part and supplier from Spain",
		Dimensions: []Dimension{
			{Concept: "Part.p_name"},
			{Concept: "Supplier.s_name"},
		},
		Measures: []Measure{
			{ID: "revenue", Function: "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)"},
		},
		Slicers: []Slicer{
			{Concept: "Nation.n_name", Operator: "=", Value: "Spain"},
		},
		Aggs: []Aggregation{
			{Order: 1, Dimension: "Part.p_name", Measure: "revenue", Function: AggAvg},
			{Order: 1, Dimension: "Supplier.s_name", Measure: "revenue", Function: AggAvg},
		},
	}
}

func TestValidateRevenueIR(t *testing.T) {
	o := tpchOnto(t)
	r := revenueIR()
	if err := r.Validate(o); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	o := tpchOnto(t)
	cases := map[string]func(r *Requirement){
		"no id":            func(r *Requirement) { r.ID = "" },
		"no measures":      func(r *Requirement) { r.Measures = nil },
		"no dimensions":    func(r *Requirement) { r.Dimensions = nil },
		"duplicate dim":    func(r *Requirement) { r.Dimensions = append(r.Dimensions, Dimension{Concept: "Part.p_name"}) },
		"unknown dim":      func(r *Requirement) { r.Dimensions[0].Concept = "Ghost.g" },
		"unqualified dim":  func(r *Requirement) { r.Dimensions[0].Concept = "Part" },
		"unnamed measure":  func(r *Requirement) { r.Measures[0].ID = "" },
		"dup measure":      func(r *Requirement) { r.Measures = append(r.Measures, r.Measures[0]) },
		"broken formula":   func(r *Requirement) { r.Measures[0].Function = "1 +" },
		"non-numeric":      func(r *Requirement) { r.Measures[0].Function = "Part.p_name" },
		"unknown attr":     func(r *Requirement) { r.Measures[0].Function = "Lineitem.ghost * 2" },
		"unknown slicer":   func(r *Requirement) { r.Slicers[0].Concept = "Ghost.g" },
		"bad operator":     func(r *Requirement) { r.Slicers[0].Operator = "~~" },
		"agg unknown dim":  func(r *Requirement) { r.Aggs[0].Dimension = "Ghost.g" },
		"agg unknown meas": func(r *Requirement) { r.Aggs[0].Measure = "ghost" },
		"agg bad func":     func(r *Requirement) { r.Aggs[0].Function = "MEDIAN" },
	}
	for name, breakIt := range cases {
		r := revenueIR()
		breakIt(r)
		if err := r.Validate(o); err == nil {
			t.Errorf("%s: Validate accepted broken requirement", name)
		}
	}
}

func TestSlicerPredicate(t *testing.T) {
	s := Slicer{Concept: "Nation.n_name", Operator: "=", Value: "Spain"}
	n, err := s.Predicate("string")
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "Nation.n_name = 'Spain'" {
		t.Errorf("predicate = %q", n.String())
	}
	num := Slicer{Concept: "Lineitem.l_quantity", Operator: ">=", Value: "10"}
	n, err = num.Predicate("float")
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "Lineitem.l_quantity >= 10" {
		t.Errorf("predicate = %q", n.String())
	}
	neg := Slicer{Concept: "Lineitem.l_quantity", Operator: "<", Value: "-5"}
	if _, err := neg.Predicate("float"); err != nil {
		t.Errorf("negative literal rejected: %v", err)
	}
	boolean := Slicer{Concept: "X.flag", Operator: "=", Value: "true"}
	if _, err := boolean.Predicate("bool"); err != nil {
		t.Errorf("bool literal rejected: %v", err)
	}
	if _, err := (Slicer{Concept: "X.flag", Operator: "=", Value: "maybe"}).Predicate("bool"); err == nil {
		t.Error("bad bool literal accepted")
	}
	if _, err := (Slicer{Concept: "X.q", Operator: "=", Value: "not a number"}).Predicate("float"); err == nil {
		t.Error("non-literal numeric value accepted")
	}
	if _, err := (Slicer{Concept: "X.q", Operator: "=", Value: "1 + 1"}).Predicate("float"); err == nil {
		t.Error("expression value accepted")
	}
}

func TestParseAggFunc(t *testing.T) {
	for in, want := range map[string]AggFunc{
		"SUM": AggSum, "sum": AggSum,
		"AVERAGE": AggAvg, "avg": AggAvg, "Mean": AggAvg,
		"MINIMUM": AggMin, "max": AggMax, "count": AggCount,
	} {
		got, err := ParseAggFunc(in)
		if err != nil || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("median accepted")
	}
}

func TestReferencedAttributesAndConcepts(t *testing.T) {
	r := revenueIR()
	attrs, err := r.ReferencedAttributes()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"Lineitem.l_discount", "Lineitem.l_extendedprice",
		"Nation.n_name", "Part.p_name", "Supplier.s_name",
	}
	if strings.Join(attrs, ",") != strings.Join(want, ",") {
		t.Errorf("attrs = %v, want %v", attrs, want)
	}
	concepts, err := r.ReferencedConcepts()
	if err != nil {
		t.Fatal(err)
	}
	wantC := []string{"Lineitem", "Nation", "Part", "Supplier"}
	if strings.Join(concepts, ",") != strings.Join(wantC, ",") {
		t.Errorf("concepts = %v, want %v", concepts, wantC)
	}
}

func TestAggregationFor(t *testing.T) {
	r := revenueIR()
	if f := r.AggregationFor("Part.p_name", "revenue"); f != AggAvg {
		t.Errorf("AggregationFor = %v", f)
	}
	// Unspecified pair defaults to SUM.
	if f := r.AggregationFor("Part.p_name", "other"); f != AggSum {
		t.Errorf("default = %v", f)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	r := revenueIR()
	text, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<cube", "refID=\"revenue\"", "<operator>=</operator>", "<value>Spain</value>"} {
		if !strings.Contains(text, want) {
			t.Errorf("serialised xRQ missing %q:\n%s", want, text)
		}
	}
	r2, err := Unmarshal(text)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID != r.ID || r2.Name != r.Name {
		t.Errorf("header changed: %+v", r2)
	}
	if len(r2.Dimensions) != 2 || len(r2.Measures) != 1 || len(r2.Slicers) != 1 || len(r2.Aggs) != 2 {
		t.Fatalf("shape changed: %+v", r2)
	}
	if r2.Measures[0].Function != r.Measures[0].Function {
		t.Errorf("formula changed: %q", r2.Measures[0].Function)
	}
	if r2.Slicers[0] != r.Slicers[0] {
		t.Errorf("slicer changed: %+v", r2.Slicers[0])
	}
	o := tpchOnto(t)
	if err := r2.Validate(o); err != nil {
		t.Errorf("round-tripped requirement invalid: %v", err)
	}
}

func TestReadPaperStyleDocument(t *testing.T) {
	// A document spelled like the paper's snippet (AVERAGE spelling,
	// whitespace in function).
	src := `<cube id="IR1">
	  <dimensions>
	    <concept id="Part.p_name"/>
	    <concept id="Supplier.s_name"/>
	  </dimensions>
	  <measures>
	    <concept id="revenue">
	      <function> Lineitem.l_extendedprice
	          * Lineitem.l_discount</function>
	    </concept>
	  </measures>
	  <slicers>
	    <comparison>
	      <concept id="Nation.n_name"/>
	      <operator>=</operator>
	      <value>Spain</value>
	    </comparison>
	  </slicers>
	  <aggregations>
	    <aggregation order="1">
	      <dimension refID="Part.p_name"/>
	      <measure refID="revenue"/>
	      <function>AVERAGE</function>
	    </aggregation>
	  </aggregations>
	</cube>`
	r, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Aggs[0].Function != AggAvg {
		t.Errorf("AVERAGE parsed as %v", r.Aggs[0].Function)
	}
	if err := r.Validate(tpchOnto(t)); err != nil {
		t.Errorf("paper-style doc invalid: %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"not xml",
		`<cube id="x"><aggregations><aggregation><function>median</function></aggregation></aggregations></cube>`,
	} {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal accepted %q", src)
		}
	}
}

func TestClone(t *testing.T) {
	r := revenueIR()
	c := r.Clone()
	c.Dimensions[0].Concept = "changed"
	c.Measures[0].ID = "changed"
	if r.Dimensions[0].Concept == "changed" || r.Measures[0].ID == "changed" {
		t.Error("Clone shares backing arrays")
	}
}

func TestLookups(t *testing.T) {
	r := revenueIR()
	if _, ok := r.Dimension("Part.p_name"); !ok {
		t.Error("Dimension lookup failed")
	}
	if _, ok := r.Dimension("nope"); ok {
		t.Error("Dimension lookup false positive")
	}
	if m, ok := r.Measure("revenue"); !ok || m.ID != "revenue" {
		t.Error("Measure lookup failed")
	}
	if _, ok := r.Measure("nope"); ok {
		t.Error("Measure lookup false positive")
	}
}
