// Package quarry is the public API of the Quarry reproduction: an
// end-to-end system for managing the data-warehouse (DW) design
// lifecycle, after "Quarry: Digging Up the Gems of Your Data
// Treasury" (Jovanovic et al., EDBT 2015).
//
// Quarry starts from high-level information requirements — analytical
// queries over a domain ontology, in the xRQ format — and automates
// the rest of the lifecycle:
//
//   - the Requirements Elicitor suggests analytical perspectives from
//     the ontology graph and assembles requirements interactively;
//   - the Requirements Interpreter translates each requirement into a
//     validated partial MD schema (xMD) and ETL process (xLM);
//   - the Design Integrator incrementally consolidates partial
//     designs into unified solutions, guided by quality factors
//     (structural complexity of MD schemata, estimated execution time
//     of ETL flows), re-validating soundness and satisfiability at
//     every step;
//   - the Design Deployer emits platform-specific artifacts
//     (PostgreSQL DDL, Pentaho PDI transformations) and executes the
//     unified flow natively to populate the warehouse.
//
// Native execution uses a batch-vectorised, pipelined, DAG-parallel
// engine: operators stream fixed-size row batches and independent
// branches of the unified flow run concurrently on a bounded worker
// pool. Tune it with EngineOptions — Parallelism bounds concurrently
// executing operators (default GOMAXPROCS; 1 gives single-threaded
// execution), BatchSize sets rows per batch (default 1024) — via
// Config.Engine, or per run with Platform.RunWith. Results are
// identical for every setting; only wall-clock time changes.
//
// The execution database comes in two flavours behind one API: the
// default in-memory store, and a paged, disk-backed store (OpenDB or
// Config.StorageDir) whose tables survive process restarts — segment
// files of fixed 64 KiB columnar pages named by a manifest, with
// every ETL run committed by a single atomic manifest rename and
// recovery discarding whatever a crashed run left behind. Both
// backends answer every query byte-identically; see
// docs/ARCHITECTURE.md for the storage-format spec.
//
// Quickstart:
//
//	p, db, err := quarry.NewTPCHPlatform(10, 42)  // micro-TPC-H, SF 10
//	if err != nil { ... }
//	_, err = p.AddRequirement(quarry.RevenueRequirement())
//	dep, err := p.Deploy("demo")                  // DDL + .ktr artifacts
//	res, err := p.Run()                           // populate the DW in db
//	_ = db; _ = dep; _ = res
//
// For custom domains, construct an ontology, a source catalog and a
// mapping (packages re-exported below) and pass them via Config.
package quarry

import (
	"quarry/internal/core"
	"quarry/internal/elicitor"
	"quarry/internal/engine"
	"quarry/internal/mapping"
	"quarry/internal/olap"
	"quarry/internal/ontology"
	"quarry/internal/sources"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// Platform is the running Quarry instance; see internal/core for the
// full method set (AddRequirement, ChangeRequirement,
// RemoveRequirement, Unified, Deploy, Run, ...).
type Platform = core.Platform

// Config assembles a Platform.
type Config = core.Config

// ChangeReport describes one lifecycle change.
type ChangeReport = core.ChangeReport

// Deployment bundles the Design Deployer artifacts.
type Deployment = core.Deployment

// Requirement is an information requirement (xRQ).
type Requirement = xrq.Requirement

// MDSchema is a multidimensional schema (xMD).
type MDSchema = xmd.Schema

// ETLDesign is an ETL process design (xLM).
type ETLDesign = xlm.Design

// Ontology is a domain ontology.
type Ontology = ontology.Ontology

// Mapping is a source schema mapping.
type Mapping = mapping.Mapping

// Catalog is a data-source catalog.
type Catalog = sources.Catalog

// DB is the embedded execution database.
type DB = storage.DB

// NewMemDB creates an empty in-memory execution database — the
// default backend, and the byte-identity oracle the disk backend is
// verified against.
func NewMemDB() *DB { return storage.NewMemDB() }

// OpenDB opens (or initialises) a paged, disk-backed execution
// database rooted at dir. Tables survive process restarts; every ETL
// run commits atomically (one manifest fsync+rename) and reopening
// recovers the last committed version, discarding segments a crashed
// run left behind. Pass the result via Config.DB — or let the
// platform open it for you with Config.StorageDir.
func OpenDB(dir string) (*DB, error) { return storage.Open(dir) }

// Elicitor is the Requirements Elicitor backend.
type Elicitor = elicitor.Elicitor

// RunResult is the outcome of executing an ETL design.
type RunResult = engine.Result

// EngineOptions tunes native ETL execution (DAG parallelism, rows per
// batch); see Config.Engine and Platform.RunWith.
type EngineOptions = engine.Options

// OLAPEngine answers analytical cube queries over the deployed DW
// (obtain one with Platform.OLAP after Run). Query is the vectorized
// fast path — star joins and hash aggregation planned directly over
// snapshot-isolated storage cursors, nothing written to the warehouse
// — and QueryStarFlow the engine-executed correctness oracle.
type OLAPEngine = olap.Engine

// CubeQuery is an analytical query over a deployed fact table:
// group-by descriptors (optionally at coarser roll-up levels of the
// xMD hierarchies), aggregated measures, slicer predicate and an
// optional diamond dice.
type CubeQuery = olap.CubeQuery

// OLAPMeasure is one aggregated measure of a CubeQuery.
type OLAPMeasure = olap.MeasureSpec

// DiceSpec configures a CubeQuery's diamond dice: per-dimension
// minimum carats, pruned to a fixpoint.
type DiceSpec = olap.DiceSpec

// OLAPResult is an ordered, in-memory OLAP result set.
type OLAPResult = olap.Result

// MatAgg is the adaptive materialized-aggregate store: it observes the
// query log, materializes the top-K hot (group-by set, measure set)
// granularities into version-keyed snapshot-backed tables, and lets
// the fast path rewrite covered queries onto the coarsest usable
// aggregate — byte-identical to the oracle by construction. Enable it
// per platform with Config.MatAggTopK (Platform.MatAgg exposes the
// store; call Refresh after warehouse reloads) or attach an own store
// with OLAPEngine.WithMatAgg.
type MatAgg = olap.MatAgg

// MatAggStats is the store's admin/stats view.
type MatAggStats = olap.MatAggStats

// NewMatAgg builds a materialized-aggregate store keeping up to topK
// aggregates per refresh.
func NewMatAgg(topK int) *MatAgg { return olap.NewMatAgg(topK) }

// New builds a Platform for a custom domain.
func New(cfg Config) (*Platform, error) { return core.New(cfg) }

// NewTPCHPlatform builds a ready-to-use platform over a generated
// micro-TPC-H instance (scale factor sf, deterministic seed): the
// setting of the paper's demonstration. It returns the platform and
// the database holding the generated sources (and, after Run, the
// deployed DW tables).
func NewTPCHPlatform(sf float64, seed int64) (*Platform, *DB, error) {
	onto, err := tpch.Ontology()
	if err != nil {
		return nil, nil, err
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		return nil, nil, err
	}
	cat, err := tpch.Catalog(sf)
	if err != nil {
		return nil, nil, err
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, sf, seed); err != nil {
		return nil, nil, err
	}
	p, err := core.New(Config{Ontology: onto, Mapping: mapg, Catalog: cat, DB: db})
	if err != nil {
		return nil, nil, err
	}
	return p, db, nil
}

// RevenueRequirement is the paper's Figure 4 requirement: average
// revenue per part and supplier, for parts ordered from Spain.
func RevenueRequirement() *Requirement { return tpch.RevenueRequirement() }

// NetProfitRequirement is the second Figure 3 requirement
// (fact_table_netprofit).
func NetProfitRequirement() *Requirement { return tpch.NetProfitRequirement() }

// CanonicalRequirements returns the demo requirement set.
func CanonicalRequirements() []*Requirement { return tpch.CanonicalRequirements() }

// GenerateRequirements synthesises n distinct valid TPC-H
// requirements (for scalability experiments).
func GenerateRequirements(n int) []*Requirement { return tpch.GenerateRequirements(n) }

// ParseRequirement parses an xRQ document.
func ParseRequirement(xmlText string) (*Requirement, error) { return xrq.Unmarshal(xmlText) }

// MarshalRequirement renders a requirement as xRQ XML.
func MarshalRequirement(r *Requirement) (string, error) { return xrq.Marshal(r) }
