package quarry_test

import (
	"strings"
	"testing"

	"quarry"
)

// TestPublicQuickstart exercises the README quickstart through the
// public API only.
func TestPublicQuickstart(t *testing.T) {
	p, db, err := quarry.NewTPCHPlatform(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	dep, err := p.Deploy("demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.DDL, "CREATE TABLE") {
		t.Error("no DDL")
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded["fact_table_revenue"] == 0 {
		t.Error("fact table empty")
	}
	if _, ok := db.Table("fact_table_revenue"); !ok {
		t.Error("deployed table missing from db")
	}
}

func TestPublicRequirementRoundTrip(t *testing.T) {
	r := quarry.RevenueRequirement()
	text, err := quarry.MarshalRequirement(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := quarry.ParseRequirement(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID {
		t.Errorf("id = %s", back.ID)
	}
}

func TestPublicGeneratedRequirements(t *testing.T) {
	if got := len(quarry.GenerateRequirements(7)); got != 7 {
		t.Errorf("generated = %d", got)
	}
	if got := len(quarry.CanonicalRequirements()); got != 4 {
		t.Errorf("canonical = %d", got)
	}
}
